// Adaptive per-key scheme migration (ISSUE 9 tentpole): the
// proto::AdaptiveController decision logic, the core::AdaptiveProtocol
// handover machinery (PCX <-> CUP <-> DUP on the live tree), the
// arity-capped DUP fan-out planner, and the end-to-end determinism
// contracts (audit neutrality, shard and job bit-identity). Lives in its
// own binary (ctest label "adaptive") so the CI ThreadSanitizer job can
// run just the migration stress suite.

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/adaptive_protocol.h"
#include "core/dup_protocol.h"
#include "experiment/config.h"
#include "experiment/driver.h"
#include "experiment/parallel_runner.h"
#include "multikey/simulation.h"
#include "proto/adaptive_controller.h"
#include "test_util.h"

namespace dupnet {
namespace {

using ::dupnet::testing::MakePaperTree;
using ::dupnet::testing::ProtocolHarness;
using core::AdaptiveProtocol;
using core::DupOptions;
using core::DupProtocol;
using experiment::ExperimentConfig;
using experiment::Scheme;
using experiment::SimulationDriver;
using proto::AdaptiveController;
using proto::AdaptiveOptions;
using proto::AdaptiveRegime;
using proto::ProtocolOptions;

// ---------------------------------------------------------------------------
// Controller decision logic (pure, no protocol attached).
// ---------------------------------------------------------------------------

TEST(AdaptiveControllerTest, StartsInPcxAndStaysColdWithoutQueries) {
  AdaptiveController controller{AdaptiveOptions()};
  EXPECT_EQ(controller.regime(), AdaptiveRegime::kPcx);
  controller.RecordUpdate(0.0);
  EXPECT_EQ(controller.Tick(0.0), AdaptiveRegime::kPcx);
  EXPECT_TRUE(controller.migrations().empty());
}

TEST(AdaptiveControllerTest, PromotesToCupWhenRatioReachesEntryBar) {
  // Defaults: cup_enter 2, dup_enter 16. One update, four queries: ratio 4.
  AdaptiveController controller{AdaptiveOptions()};
  controller.RecordUpdate(0.0);
  for (int i = 0; i < 4; ++i) controller.RecordQuery(0.0);
  EXPECT_EQ(controller.Tick(1.0), AdaptiveRegime::kCup);
  ASSERT_EQ(controller.migrations().size(), 1u);
  EXPECT_EQ(controller.migrations()[0].from, AdaptiveRegime::kPcx);
  EXPECT_EQ(controller.migrations()[0].to, AdaptiveRegime::kCup);
  EXPECT_EQ(controller.migrations()[0].at, 1.0);
}

TEST(AdaptiveControllerTest, FlashCrowdPromotesStraightToDup) {
  AdaptiveController controller{AdaptiveOptions()};
  controller.RecordUpdate(0.0);
  for (int i = 0; i < 32; ++i) controller.RecordQuery(0.0);
  // Ratio 32 >= dup_enter 16: PCX jumps directly to DUP, no CUP stopover.
  EXPECT_EQ(controller.Tick(1.0), AdaptiveRegime::kDup);
  ASSERT_EQ(controller.migrations().size(), 1u);
  EXPECT_EQ(controller.migrations()[0].from, AdaptiveRegime::kPcx);
  EXPECT_EQ(controller.migrations()[0].to, AdaptiveRegime::kDup);
}

TEST(AdaptiveControllerTest, HysteresisDeadBandHoldsTheRegime) {
  // Enter CUP at ratio 4, then sit at ratio 1.5 — below the entry bar (2)
  // but above the exit bar (2 * 0.5 = 1). The dead band must hold CUP.
  AdaptiveController controller{AdaptiveOptions()};
  controller.RecordUpdate(0.0);
  for (int i = 0; i < 4; ++i) controller.RecordQuery(0.0);
  ASSERT_EQ(controller.Tick(1.0), AdaptiveRegime::kCup);

  // Slide past the 3600 s window so only the new events count.
  const double t = 5000.0;
  controller.RecordUpdate(t);
  controller.RecordUpdate(t);
  for (int i = 0; i < 3; ++i) controller.RecordQuery(t);
  EXPECT_EQ(controller.Tick(t), AdaptiveRegime::kCup);
  EXPECT_EQ(controller.migrations().size(), 1u);

  // Another window later with no demand at all: ratio 0 drops below the
  // exit bar and the key falls back to PCX.
  EXPECT_EQ(controller.Tick(10000.0), AdaptiveRegime::kPcx);
  ASSERT_EQ(controller.migrations().size(), 2u);
  EXPECT_EQ(controller.migrations()[1].from, AdaptiveRegime::kCup);
  EXPECT_EQ(controller.migrations()[1].to, AdaptiveRegime::kPcx);
}

TEST(AdaptiveControllerTest, DwellDampsBackToBackMigrations) {
  AdaptiveOptions options;
  options.dwell_updates = 3;
  AdaptiveController controller{options};
  controller.RecordUpdate(0.0);
  for (int i = 0; i < 4; ++i) controller.RecordQuery(0.0);
  ASSERT_EQ(controller.Tick(1.0), AdaptiveRegime::kCup);  // Migration tick 1.

  // Demand explodes immediately; DUP is desired but dwell_updates = 3
  // blocks the migration until three ticks have passed since the last one.
  for (int i = 0; i < 60; ++i) controller.RecordQuery(1.0);
  EXPECT_EQ(controller.Tick(2.0), AdaptiveRegime::kCup);  // Tick 2: 1 < 3.
  EXPECT_EQ(controller.Tick(3.0), AdaptiveRegime::kCup);  // Tick 3: 2 < 3.
  EXPECT_EQ(controller.Tick(4.0), AdaptiveRegime::kDup);  // Tick 4: 3 >= 3.
  EXPECT_EQ(controller.migrations().size(), 2u);
}

TEST(AdaptiveControllerTest, CollapsingFlashCrowdFallsStraightToPcx) {
  AdaptiveController controller{AdaptiveOptions()};
  controller.RecordUpdate(0.0);
  for (int i = 0; i < 32; ++i) controller.RecordQuery(0.0);
  ASSERT_EQ(controller.Tick(1.0), AdaptiveRegime::kDup);
  // The crowd evaporates: ratio 0 is below even the CUP exit bar, so the
  // demotion skips CUP entirely (dwell satisfied: ticks 1 -> 3).
  controller.Tick(5000.0);
  EXPECT_EQ(controller.Tick(5001.0), AdaptiveRegime::kPcx);
  ASSERT_EQ(controller.migrations().size(), 2u);
  EXPECT_EQ(controller.migrations()[1].to, AdaptiveRegime::kPcx);
}

TEST(AdaptiveControllerTest, DecisionsAreAPureFunctionOfTheEventStream) {
  // Two controllers fed the identical stream must produce bit-identical
  // migration logs — the shard/job determinism contract in miniature.
  AdaptiveController a{AdaptiveOptions()};
  AdaptiveController b{AdaptiveOptions()};
  const double times[] = {0.0, 10.0, 500.0, 570.0, 1140.0, 4000.0, 4570.0};
  for (AdaptiveController* c : {&a, &b}) {
    for (double t : times) {
      for (int i = 0; i < 8; ++i) c->RecordQuery(t);
      c->RecordUpdate(t);
      c->Tick(t);
    }
  }
  EXPECT_EQ(a.regime(), b.regime());
  ASSERT_EQ(a.migrations().size(), b.migrations().size());
  for (size_t i = 0; i < a.migrations().size(); ++i) {
    EXPECT_TRUE(a.migrations()[i] == b.migrations()[i]) << "migration " << i;
  }
}

// ---------------------------------------------------------------------------
// Protocol-level handover on the paper tree.
// ---------------------------------------------------------------------------

class AdaptiveProtocolTest : public ::testing::Test {
 protected:
  AdaptiveProtocolTest() : harness_(MakePaperTree()) {}

  void MakeProtocol(DupOptions dup_options = DupOptions(),
                    AdaptiveOptions adaptive_options = AdaptiveOptions()) {
    protocol_ = std::make_unique<AdaptiveProtocol>(
        &harness_.network(), &harness_.tree(), ProtocolOptions(), dup_options,
        adaptive_options);
    harness_.Attach(protocol_.get());
  }

  /// Sum of the live fan-out footprint: subscriber-list entries plus
  /// delegation-plan entries plus relay duties across all nodes.
  size_t DupFootprint() const {
    size_t total = 0;
    protocol_->VisitFanOutStates(
        [&](NodeId, const DupProtocol::FanOutState& state) {
          total += state.slist->size() + state.delegations->size() +
                   state.relays->size();
        });
    return total;
  }

  ProtocolHarness harness_;
  std::unique_ptr<AdaptiveProtocol> protocol_;
};

TEST_F(AdaptiveProtocolTest, StartsInPcxAndServesPulls) {
  MakeProtocol();
  EXPECT_EQ(protocol_->name(), "adaptive");
  EXPECT_EQ(protocol_->regime(), AdaptiveRegime::kPcx);
  harness_.Publish(1);
  EXPECT_EQ(protocol_->regime(), AdaptiveRegime::kPcx);
  harness_.QueryAt(6);
  EXPECT_EQ(protocol_->CacheOf(6).stored_version(), 1u);
  EXPECT_EQ(DupFootprint(), 0u);  // No push state of any kind in PCX.
  EXPECT_TRUE(harness_.Audit().ok());
}

TEST_F(AdaptiveProtocolTest, HotKeyMigratesToDupAndPushes) {
  MakeProtocol();
  harness_.Publish(1);
  harness_.QueryAt(6, 20);
  harness_.QueryAt(4, 20);
  // Tick at the next publish: 40 queries / 2 in-window updates = 20 >= 16.
  harness_.Publish(2);
  EXPECT_EQ(protocol_->regime(), AdaptiveRegime::kDup);
  // The handover used real subscribes: both interested nodes now hold a
  // SELF entry and the virtual path exists upstream.
  EXPECT_TRUE(protocol_->SubscriberListOf(6).HasSelf());
  EXPECT_TRUE(protocol_->SubscriberListOf(4).HasSelf());
  EXPECT_TRUE(protocol_->InDupTree(3));  // Branch point for 4 and 6.
  // The next update is pushed, not pulled.
  harness_.Publish(3);
  EXPECT_EQ(protocol_->CacheOf(6).stored_version(), 3u);
  EXPECT_EQ(protocol_->CacheOf(4).stored_version(), 3u);
  EXPECT_TRUE(harness_.Audit().ok());
}

TEST_F(AdaptiveProtocolTest, CoolingKeyLeavesDupWithNoStateStranded) {
  MakeProtocol();
  harness_.Publish(1);
  harness_.QueryAt(6, 20);
  harness_.QueryAt(4, 20);
  harness_.Publish(2);
  ASSERT_EQ(protocol_->regime(), AdaptiveRegime::kDup);
  ASSERT_GT(DupFootprint(), 0u);

  // Demand evaporates: slide past the 3600 s window, then tick twice (the
  // dwell bound holds the first demotion opportunity back by one tick).
  harness_.AdvanceTime(4000.0);
  harness_.Publish(3);
  harness_.Publish(4);
  EXPECT_EQ(protocol_->regime(), AdaptiveRegime::kPcx);
  // Handover completeness: the teardown unsubscribes cascaded and nothing
  // is left — no subscriber stranded, no delegation, no relay duty.
  EXPECT_EQ(DupFootprint(), 0u);
  // AuditQuiescent forces the global pass, which includes the
  // adaptive-handover invariant.
  EXPECT_TRUE(harness_.Audit().ok());
}

TEST_F(AdaptiveProtocolTest, WarmKeyRunsCupWithDemandDrivenPushes) {
  MakeProtocol();
  harness_.Publish(1);
  harness_.QueryAt(6, 8);  // First query climbs to the root, seeding demand.
  harness_.Publish(2);     // 8 queries / 2 updates = 4: CUP territory.
  ASSERT_EQ(protocol_->regime(), AdaptiveRegime::kCup);
  // Node 6 is interested (> threshold_c queries); its next query fires the
  // one-shot interest notification toward its parent.
  harness_.QueryAt(6);
  const std::vector<NodeId> notified = protocol_->NotifiedNodes();
  EXPECT_TRUE(std::binary_search(notified.begin(), notified.end(), NodeId{6}));
  EXPECT_TRUE(protocol_->HasDemandBranch(5, 6));
  // The publish travels hop-by-hop down the demand path 1-2-3-5-6.
  harness_.Publish(3);
  EXPECT_EQ(protocol_->regime(), AdaptiveRegime::kCup);
  EXPECT_EQ(protocol_->CacheOf(6).stored_version(), 3u);
  // CUP's weakness, faithfully reproduced: the uninterested intermediate
  // node 5 received the update too.
  EXPECT_EQ(protocol_->CacheOf(5).stored_version(), 3u);
  // No DUP machinery was engaged at any point.
  EXPECT_EQ(DupFootprint(), 0u);
  EXPECT_TRUE(harness_.Audit().ok());
}

// ---------------------------------------------------------------------------
// Arity-capped DUP fan-out (flash-crowd load balancing).
// ---------------------------------------------------------------------------

/// A star: the authority with `leaves` direct children — the worst-case
/// fan-out topology (every subscriber is its own branch at the root).
topo::IndexSearchTree MakeStarTree(NodeId leaves) {
  topo::IndexSearchTree tree(/*root=*/1);
  for (NodeId i = 0; i < leaves; ++i) {
    DUP_CHECK_OK(tree.AttachLeaf(1, 2 + i));
  }
  return tree;
}

class ArityCapTest : public ::testing::Test {
 protected:
  static constexpr NodeId kLeaves = 16;

  ArityCapTest() : harness_(MakeStarTree(kLeaves)) {}

  void MakeProtocol(uint32_t max_arity) {
    DupOptions dup_options;
    dup_options.max_arity = max_arity;
    protocol_ = std::make_unique<DupProtocol>(
        &harness_.network(), &harness_.tree(), ProtocolOptions(), dup_options);
    harness_.Attach(protocol_.get());
    harness_.Publish(1);
  }

  void SubscribeAllLeaves() {
    for (NodeId i = 0; i < kLeaves; ++i) protocol_->ForceSubscribe(2 + i);
    harness_.Drain();
  }

  void ExpectPushReachesAllLeaves(IndexVersion version) {
    harness_.Publish(version);
    for (NodeId i = 0; i < kLeaves; ++i) {
      EXPECT_EQ(protocol_->CacheOf(2 + i).stored_version(), version)
          << "leaf " << 2 + i;
    }
  }

  ProtocolHarness harness_;
  std::unique_ptr<DupProtocol> protocol_;
};

TEST_F(ArityCapTest, UncappedRootPushesToEverySubscriberDirectly) {
  MakeProtocol(/*max_arity=*/0);
  SubscribeAllLeaves();
  EXPECT_EQ(protocol_->MaxDirectFanOut(), static_cast<size_t>(kLeaves));
  ExpectPushReachesAllLeaves(2);
  EXPECT_TRUE(harness_.Audit().ok());
}

TEST_F(ArityCapTest, CapBoundsFanOutAndRelaysStillReachEveryone) {
  MakeProtocol(/*max_arity=*/4);
  SubscribeAllLeaves();
  // 16 subscribers under cap 4: the root pushes to 4 directly and
  // delegates the other 12 across its first subscribers, at most 4 duties
  // per delegate — so no node sends more than 4 pushes per update.
  EXPECT_LE(protocol_->MaxDirectFanOut(), 4u);
  ExpectPushReachesAllLeaves(2);
  // The audit's arity invariants (plan equality, direct bound, delegation
  // consistency, per-delegator relay load) all pass.
  EXPECT_TRUE(harness_.Audit().ok());
}

TEST_F(ArityCapTest, CapOneDegeneratesToARelayChainAndStillDelivers) {
  MakeProtocol(/*max_arity=*/1);
  SubscribeAllLeaves();
  EXPECT_LE(protocol_->MaxDirectFanOut(), 1u);
  ExpectPushReachesAllLeaves(2);
  EXPECT_TRUE(harness_.Audit().ok());
}

TEST_F(ArityCapTest, PlanRepairsAfterDelegateFailure) {
  MakeProtocol(/*max_arity=*/4);
  SubscribeAllLeaves();
  // Node 2 is the first subscriber — a delegate carrying relay duties.
  // Fail it the way the driver would: tree repair, node marked down,
  // protocol notified.
  const NodeId failed = 2;
  const NodeId parent = harness_.tree().Parent(failed);
  const std::vector<NodeId> children = harness_.tree().Children(failed);
  ASSERT_TRUE(harness_.tree().RemoveNode(failed).ok());
  harness_.network().SetNodeDown(failed, true);
  protocol_->OnNodeRemoved(failed, parent, children, /*was_root=*/false,
                           harness_.tree().root());
  harness_.Drain();
  // The survivors re-planned: the cap still holds, nobody references the
  // dead node, and the next update reaches all 15 remaining leaves.
  EXPECT_LE(protocol_->MaxDirectFanOut(), 4u);
  harness_.Publish(2);
  for (NodeId i = 1; i < kLeaves; ++i) {
    EXPECT_EQ(protocol_->CacheOf(2 + i).stored_version(), 2u)
        << "leaf " << 2 + i;
  }
  EXPECT_TRUE(harness_.Audit().ok());
}

TEST_F(ArityCapTest, UnsubscribesShrinkThePlanBackToDirectPushes) {
  MakeProtocol(/*max_arity=*/4);
  SubscribeAllLeaves();
  // Drop to 3 subscribers: below the cap, the plan must empty out.
  for (NodeId i = 3; i < kLeaves; ++i) protocol_->ForceUnsubscribe(2 + i);
  harness_.Drain();
  size_t delegations = 0, relays = 0;
  protocol_->VisitFanOutStates(
      [&](NodeId, const DupProtocol::FanOutState& state) {
        delegations += state.delegations->size();
        relays += state.relays->size();
      });
  EXPECT_EQ(delegations, 0u);
  EXPECT_EQ(relays, 0u);
  // The push reaches the three remaining subscribers directly and nobody
  // else: the departed leaves are out of the plan, not strandees.
  harness_.Publish(2);
  for (NodeId i = 0; i < kLeaves; ++i) {
    // Version 1 predates every subscription, so the departed leaves have
    // never cached anything at all.
    const IndexVersion expected = i < 3 ? 2 : 0;
    EXPECT_EQ(protocol_->CacheOf(2 + i).stored_version(), expected)
        << "leaf " << 2 + i;
  }
  EXPECT_TRUE(harness_.Audit().ok());
}

// ---------------------------------------------------------------------------
// End-to-end driver runs: migration stress + determinism contracts.
// ---------------------------------------------------------------------------

/// A three-act workload on one key: warm trickle (CUP territory), a flash
/// crowd with a drifting hot set (DUP), then near-silence (back to PCX).
ExperimentConfig MigrationScenario() {
  ExperimentConfig config;
  config.scheme = Scheme::kAdaptive;
  config.num_nodes = 128;
  config.lambda = 0.5;
  config.ttl = 300.0;
  config.push_lead = 30.0;  // Update period 270 s: ~12 controller ticks.
  config.warmup_time = 600.0;
  config.measure_time = 2400.0;
  config.seed = 11;
  config.dup.max_arity = 4;
  config.adaptive.demand_window = 600.0;
  config.adaptive.cup_enter_per_update = 30.0;
  config.adaptive.dup_enter_per_update = 400.0;
  config.adaptive.query_saturation = 8192;
  config.phases = {{1200.0, 16.0, 16}, {1800.0, 0.01, 0}};
  return config;
}

TEST(AdaptiveDriverTest, MigrationScenarioVisitsAllThreeRegimes) {
  ExperimentConfig config = MigrationScenario();
  config.audit_mode = audit::AuditMode::kParanoid;
  SimulationDriver driver(config);
  ASSERT_TRUE(driver.Init().ok());
  driver.RunToCompletion();
  ASSERT_NE(driver.audit_checker(), nullptr);
  EXPECT_GT(driver.audit_checker()->checks_run(), 0u);
  const auto audit = driver.audit_checker()->ToStatus();
  EXPECT_TRUE(audit.ok()) << audit.ToString();

  const auto& migrations =
      driver.adaptive_protocol()->controller().migrations();
  ASSERT_GE(migrations.size(), 2u) << "scenario produced no migrations";
  bool entered_dup = false, left_dup = false;
  for (const auto& m : migrations) {
    if (m.to == AdaptiveRegime::kDup) entered_dup = true;
    if (m.from == AdaptiveRegime::kDup) left_dup = true;
  }
  EXPECT_TRUE(entered_dup);
  EXPECT_TRUE(left_dup);
  // The flash crowd ran under the cap.
  EXPECT_LE(driver.adaptive_protocol()->MaxDirectFanOut(), 4u);
}

TEST(AdaptiveDriverTest, MigrationStressSurvivesChurnAndLoss) {
  ExperimentConfig config = MigrationScenario();
  config.num_nodes = 64;
  config.audit_mode = audit::AuditMode::kParanoid;
  config.churn.join_rate = 0.01;
  config.churn.leave_rate = 0.005;
  config.churn.fail_rate = 0.005;
  config.churn.detect_delay = 5.0;
  config.faults.loss_rate = 0.05;
  config.faults.retry_max = 3;
  config.faults.retry_timeout = 1.0;
  config.faults.retry_backoff = 2.0;
  config.faults.refresh_interval = 150.0;
  SimulationDriver driver(config);
  ASSERT_TRUE(driver.Init().ok());
  driver.RunToCompletion();
  ASSERT_NE(driver.audit_checker(), nullptr);
  const auto audit = driver.audit_checker()->ToStatus();
  EXPECT_TRUE(audit.ok()) << audit.ToString();
}

/// Field-by-field bit-identity of the metrics two runs produced.
void ExpectSameMetrics(const metrics::RunMetrics& a,
                       const metrics::RunMetrics& b, const char* context) {
  SCOPED_TRACE(context);
  EXPECT_EQ(a.queries, b.queries);
  EXPECT_EQ(a.avg_latency_hops, b.avg_latency_hops);
  EXPECT_EQ(a.avg_cost_hops, b.avg_cost_hops);
  EXPECT_EQ(a.local_hit_rate, b.local_hit_rate);
  EXPECT_EQ(a.stale_rate, b.stale_rate);
  EXPECT_EQ(a.hops.request(), b.hops.request());
  EXPECT_EQ(a.hops.reply(), b.hops.reply());
  EXPECT_EQ(a.hops.push(), b.hops.push());
  EXPECT_EQ(a.hops.control(), b.hops.control());
  EXPECT_EQ(a.delivery_ratio, b.delivery_ratio);
  EXPECT_EQ(a.delivery.total_sent(), b.delivery.total_sent());
  EXPECT_EQ(a.latency_p50, b.latency_p50);
  EXPECT_EQ(a.latency_p95, b.latency_p95);
  EXPECT_EQ(a.latency_max, b.latency_max);
}

TEST(AdaptiveDriverTest, ParanoidAuditIsMetricsAndMigrationNeutral) {
  // The auditor observes only: metrics AND the migration log must be
  // bit-identical between audit off and audit paranoid.
  auto run = [](audit::AuditMode mode, metrics::RunMetrics* metrics) {
    ExperimentConfig config = MigrationScenario();
    config.audit_mode = mode;
    SimulationDriver driver(config);
    DUP_CHECK_OK(driver.Init());
    driver.RunToCompletion();
    *metrics = driver.Collect();
    return driver.adaptive_protocol()->controller().migrations();
  };
  metrics::RunMetrics off_metrics, paranoid_metrics;
  const auto off = run(audit::AuditMode::kOff, &off_metrics);
  const auto paranoid = run(audit::AuditMode::kParanoid, &paranoid_metrics);
  ExpectSameMetrics(off_metrics, paranoid_metrics, "audit off vs paranoid");
  ASSERT_EQ(off.size(), paranoid.size());
  for (size_t i = 0; i < off.size(); ++i) {
    EXPECT_TRUE(off[i] == paranoid[i]) << "migration " << i;
  }
}

TEST(AdaptiveDriverTest, MetricsBitIdenticalAtAnyJobCount) {
  const ExperimentConfig config = MigrationScenario();
  auto serial = SimulationDriver::Run(config);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  std::vector<ExperimentConfig> batch(3, config);
  for (size_t jobs : {1u, 4u}) {
    experiment::ParallelRunner runner(jobs);
    const auto outcomes = runner.RunBatch(batch);
    ASSERT_EQ(outcomes.size(), batch.size());
    for (size_t i = 0; i < outcomes.size(); ++i) {
      ASSERT_TRUE(outcomes[i].status.ok()) << outcomes[i].status.ToString();
      ExpectSameMetrics(outcomes[i].metrics, *serial,
                        ("jobs=" + std::to_string(jobs)).c_str());
    }
  }
}

// ---------------------------------------------------------------------------
// Multikey sharding: per-key migration decisions are shard- and
// job-layout-invariant.
// ---------------------------------------------------------------------------

TEST(AdaptiveMultiKeyTest, MigrationsBitIdenticalAcrossShardsAndJobs) {
  multikey::MultiKeyConfig base;
  base.scheme = Scheme::kAdaptive;
  base.num_nodes = 64;
  base.num_keys = 8;
  base.lambda = 4.0;
  base.ttl = 300.0;
  base.push_lead = 30.0;
  base.warmup_time = 600.0;
  base.measure_time = 1800.0;
  base.seed = 7;
  base.dup.max_arity = 4;
  base.adaptive.demand_window = 600.0;

  base.shards = 1;
  base.jobs = 1;
  const auto reference = multikey::MultiKeySimulation::Run(base);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  // The Zipf-hot head keys should actually migrate in this workload,
  // otherwise the bit-identity below is vacuous.
  size_t total_migrations = 0;
  for (const auto& key : reference->keys) {
    total_migrations += key.migrations.size();
  }
  ASSERT_GT(total_migrations, 0u);

  for (size_t shards : {2u, 4u}) {
    for (size_t jobs : {1u, 4u}) {
      multikey::MultiKeyConfig config = base;
      config.shards = shards;
      config.jobs = jobs;
      const auto result = multikey::MultiKeySimulation::Run(config);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      SCOPED_TRACE("shards=" + std::to_string(shards) +
                   " jobs=" + std::to_string(jobs));
      ExpectSameMetrics(result->aggregate, reference->aggregate, "aggregate");
      ASSERT_EQ(result->keys.size(), reference->keys.size());
      for (size_t k = 0; k < result->keys.size(); ++k) {
        const auto& got = result->keys[k].migrations;
        const auto& want = reference->keys[k].migrations;
        ASSERT_EQ(got.size(), want.size()) << "key " << k;
        for (size_t i = 0; i < got.size(); ++i) {
          EXPECT_TRUE(got[i] == want[i]) << "key " << k << " migration " << i;
        }
      }
    }
  }
}

}  // namespace
}  // namespace dupnet
