#include "chord/ring.h"
#include "chord/sha1.h"
#include "chord/tree_builder.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace dupnet::chord {
namespace {

std::string DigestToHex(const Sha1Digest& digest) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  for (uint8_t byte : digest) {
    out += kHex[byte >> 4];
    out += kHex[byte & 0xF];
  }
  return out;
}

TEST(Sha1Test, Rfc3174TestVectors) {
  EXPECT_EQ(DigestToHex(Sha1("abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
  EXPECT_EQ(DigestToHex(Sha1("")),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709");
  EXPECT_EQ(DigestToHex(Sha1(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1Test, LongInput) {
  // One million 'a' characters (FIPS 180-1 test vector).
  const std::string a_million(1000000, 'a');
  EXPECT_EQ(DigestToHex(Sha1(a_million)),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1Test, BlockBoundaryLengths) {
  // 55, 56 and 64 bytes exercise the one- vs two-block padding paths.
  const std::string s55(55, 'x'), s56(56, 'x'), s64(64, 'x');
  EXPECT_NE(DigestToHex(Sha1(s55)), DigestToHex(Sha1(s56)));
  EXPECT_NE(DigestToHex(Sha1(s56)), DigestToHex(Sha1(s64)));
  // Sanity: deterministic.
  EXPECT_EQ(DigestToHex(Sha1(s64)), DigestToHex(Sha1(s64)));
}

TEST(Sha1Test, Prefix64IsBigEndianPrefix) {
  const Sha1Digest digest = Sha1("abc");
  // a9993e3647068168 is the first 8 bytes of the digest above.
  EXPECT_EQ(Sha1Prefix64(digest), 0xa9993e364706816aULL);
  EXPECT_EQ(Sha1Hash64("abc"), 0xa9993e364706816aULL);
}

TEST(IntervalTest, OpenClosedBasics) {
  EXPECT_TRUE(InIntervalOpenClosed(5, 1, 10));
  EXPECT_FALSE(InIntervalOpenClosed(1, 1, 10));   // Open at a.
  EXPECT_TRUE(InIntervalOpenClosed(10, 1, 10));   // Closed at b.
  EXPECT_FALSE(InIntervalOpenClosed(11, 1, 10));
}

TEST(IntervalTest, Wrapping) {
  const ChordId near_max = ~ChordId{0} - 5;
  EXPECT_TRUE(InIntervalOpenClosed(2, near_max, 10));
  EXPECT_TRUE(InIntervalOpenClosed(~ChordId{0}, near_max, 10));
  EXPECT_FALSE(InIntervalOpenClosed(near_max, near_max, 10));
  EXPECT_FALSE(InIntervalOpenClosed(100, near_max, 10));
}

TEST(IntervalTest, FullCircleWhenEqual) {
  EXPECT_TRUE(InIntervalOpenClosed(123, 7, 7));
  EXPECT_TRUE(InIntervalOpenClosed(7, 7, 7));
}

TEST(ChordRingTest, CreateAssignsUniqueIds) {
  auto ring = ChordRing::Create(64);
  ASSERT_TRUE(ring.ok());
  std::set<ChordId> ids;
  for (NodeId n = 0; n < 64; ++n) ids.insert(ring->IdOf(n));
  EXPECT_EQ(ids.size(), 64u);
}

TEST(ChordRingTest, RejectsEmpty) {
  EXPECT_FALSE(ChordRing::Create(0).ok());
}

TEST(ChordRingTest, SuccessorOfKeyIsFirstClockwise) {
  auto ring = ChordRing::Create(32);
  ASSERT_TRUE(ring.ok());
  for (NodeId n = 0; n < 32; ++n) {
    // A key exactly at a node's id is owned by that node.
    EXPECT_EQ(ring->SuccessorOfKey(ring->IdOf(n)), n);
    // A key just after the id belongs to the next node.
    const NodeId next = ring->SuccessorOfKey(ring->IdOf(n) + 1);
    EXPECT_NE(next, n);
  }
}

TEST(ChordRingTest, SuccessorOfNodeIsConsistentCycle) {
  auto ring = ChordRing::Create(16);
  ASSERT_TRUE(ring.ok());
  // Following successors visits every node exactly once.
  std::set<NodeId> visited;
  NodeId cur = 0;
  for (int i = 0; i < 16; ++i) {
    visited.insert(cur);
    cur = ring->SuccessorOf(cur);
  }
  EXPECT_EQ(cur, 0u);
  EXPECT_EQ(visited.size(), 16u);
}

TEST(ChordRingTest, FingerZeroIsSuccessor) {
  auto ring = ChordRing::Create(32);
  ASSERT_TRUE(ring.ok());
  for (NodeId n = 0; n < 32; ++n) {
    EXPECT_EQ(ring->Finger(n, 0), ring->SuccessorOfKey(ring->IdOf(n) + 1));
  }
}

TEST(ChordRingTest, SingleNodeRoutesToItself) {
  auto ring = ChordRing::Create(1);
  ASSERT_TRUE(ring.ok());
  EXPECT_EQ(ring->SuccessorOfKey(12345), 0u);
  EXPECT_EQ(ring->NextHop(0, 12345), 0u);
  auto path = ring->LookupPath(0, 999);
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path->size(), 1u);
}

TEST(ChordRingTest, LookupsConvergeFromEveryNode) {
  auto ring = ChordRing::Create(128);
  ASSERT_TRUE(ring.ok());
  const ChordId key = Sha1Hash64("some-key");
  const NodeId authority = ring->SuccessorOfKey(key);
  for (NodeId n = 0; n < 128; ++n) {
    auto path = ring->LookupPath(n, key);
    ASSERT_TRUE(path.ok()) << "from node " << n;
    EXPECT_EQ(path->front(), n);
    EXPECT_EQ(path->back(), authority);
  }
}

TEST(ChordRingTest, LookupHopsAreLogarithmic) {
  auto ring = ChordRing::Create(1024);
  ASSERT_TRUE(ring.ok());
  const ChordId key = Sha1Hash64("hot-key");
  double total_hops = 0;
  for (NodeId n = 0; n < 1024; ++n) {
    auto path = ring->LookupPath(n, key);
    ASSERT_TRUE(path.ok());
    total_hops += static_cast<double>(path->size() - 1);
    EXPECT_LE(path->size() - 1, 2 * 10u) << "from node " << n;
  }
  // Average should be around (1/2) log2(n) = 5; allow generous slack.
  EXPECT_LT(total_hops / 1024, 10.0);
  EXPECT_GT(total_hops / 1024, 2.0);
}

TEST(ChordTreeBuilderTest, BuildsSpanningTreeRootedAtAuthority) {
  auto ring = ChordRing::Create(256);
  ASSERT_TRUE(ring.ok());
  const ChordId key = Sha1Hash64("file.mp3");
  auto tree = ChordTreeBuilder::Build(*ring, key);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->size(), 256u);
  EXPECT_EQ(tree->root(), ring->SuccessorOfKey(key));
  EXPECT_TRUE(tree->Validate().ok());
}

TEST(ChordTreeBuilderTest, TreeParentIsNextHop) {
  auto ring = ChordRing::Create(64);
  ASSERT_TRUE(ring.ok());
  const ChordId key = Sha1Hash64("k");
  auto tree = ChordTreeBuilder::Build(*ring, key);
  ASSERT_TRUE(tree.ok());
  for (NodeId n = 0; n < 64; ++n) {
    if (n == tree->root()) continue;
    EXPECT_EQ(tree->Parent(n), ring->NextHop(n, key));
  }
}

TEST(ChordTreeBuilderTest, DifferentKeysDifferentRoots) {
  auto ring = ChordRing::Create(128);
  ASSERT_TRUE(ring.ok());
  std::set<NodeId> roots;
  for (int i = 0; i < 10; ++i) {
    auto tree = ChordTreeBuilder::BuildForKeyName(
        *ring, "key-" + std::to_string(i));
    ASSERT_TRUE(tree.ok());
    roots.insert(tree->root());
  }
  EXPECT_GT(roots.size(), 5u);
}

class ChordSizeSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(ChordSizeSweep, TreeDepthGrowsLogarithmically) {
  auto ring = ChordRing::Create(GetParam());
  ASSERT_TRUE(ring.ok());
  auto tree = ChordTreeBuilder::BuildForKeyName(*ring, "the-index");
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE(tree->Validate().ok());
  const double log2n = std::log2(static_cast<double>(GetParam()));
  EXPECT_LE(tree->MaxDepth(), static_cast<uint32_t>(3 * log2n + 4));
}

INSTANTIATE_TEST_SUITE_P(Sizes, ChordSizeSweep,
                         ::testing::Values(size_t{2}, size_t{16}, size_t{100},
                                           size_t{512}, size_t{2048}));

}  // namespace
}  // namespace dupnet::chord
