// Observability layer: run manifests, JSONL trace export and the benchdiff
// comparison engine (docs/observability.md).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "experiment/config.h"
#include "experiment/driver.h"
#include "experiment/manifest.h"
#include "experiment/replicator.h"
#include "metrics/bench_compare.h"
#include "metrics/run_manifest.h"
#include "net/message.h"
#include "trace/jsonl_writer.h"
#include "util/json.h"

namespace dupnet {
namespace {

// --------------------------------------------------------------------------
// RunManifest
// --------------------------------------------------------------------------

TEST(RunManifestTest, RoundTripsThroughJson) {
  experiment::ExperimentConfig config;
  config.scheme = experiment::Scheme::kCup;
  config.num_nodes = 512;
  config.lambda = 3.5;
  config.seed = 0xDEADBEEFCAFEBABEull;  // Above 2^53: doubles would lose it.

  metrics::RunManifest manifest =
      experiment::MakeRunManifest("dupsim", "fig4", config, /*jobs=*/4);
  manifest.wall_seconds = 12.25;

  auto parsed_json = util::JsonValue::Parse(manifest.ToJsonString());
  ASSERT_TRUE(parsed_json.ok()) << parsed_json.status().ToString();
  auto parsed = metrics::RunManifest::FromJson(*parsed_json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  EXPECT_EQ(parsed->schema_version, metrics::RunManifest::kSchemaVersion);
  EXPECT_EQ(parsed->tool, "dupsim");
  EXPECT_EQ(parsed->exhibit, "fig4");
  EXPECT_EQ(parsed->git_commit, manifest.git_commit);
  EXPECT_EQ(parsed->seed, 0xDEADBEEFCAFEBABEull);
  EXPECT_EQ(parsed->jobs, 4u);
  EXPECT_EQ(parsed->hardware_concurrency, manifest.hardware_concurrency);
  EXPECT_DOUBLE_EQ(parsed->wall_seconds, 12.25);
  EXPECT_EQ(parsed->config, manifest.config);

  const util::JsonValue* scheme = parsed->config.Find("scheme");
  ASSERT_NE(scheme, nullptr);
  EXPECT_EQ(scheme->AsString(), "cup");
  const util::JsonValue* nodes = parsed->config.Find("num_nodes");
  ASSERT_NE(nodes, nullptr);
  EXPECT_EQ(nodes->AsDouble(), 512.0);
}

TEST(RunManifestTest, EnvironmentOverridesCompiledCommit) {
  ASSERT_EQ(::setenv("DUP_GIT_COMMIT", "feedfacef00d", 1), 0);
  EXPECT_EQ(metrics::RunManifest::CurrentGitCommit(), "feedfacef00d");
  ASSERT_EQ(::unsetenv("DUP_GIT_COMMIT"), 0);
  EXPECT_FALSE(metrics::RunManifest::CurrentGitCommit().empty());
}

TEST(RunManifestTest, FromJsonRejectsMissingOrMalformedFields) {
  auto manifest = metrics::RunManifest::Create("t", "e");
  util::JsonValue json = manifest.ToJson();
  json.AsObject().erase("git_commit");
  EXPECT_FALSE(metrics::RunManifest::FromJson(json).ok());

  json = manifest.ToJson();
  json.Set("seed", "12x");  // Trailing garbage.
  EXPECT_FALSE(metrics::RunManifest::FromJson(json).ok());

  EXPECT_FALSE(metrics::RunManifest::FromJson(util::JsonValue(3.0)).ok());
}

// --------------------------------------------------------------------------
// JSONL trace writer
// --------------------------------------------------------------------------

net::Message PushMessage(NodeId from, NodeId to) {
  net::Message message;
  message.type = net::MessageType::kPush;
  message.from = from;
  message.to = to;
  message.subject = 7;
  message.version = 3;
  message.hops = 2;
  return message;
}

TEST(JsonlTraceWriterTest, FormatParseRoundTrip) {
  const net::Message message = PushMessage(4, 9);
  const std::string line = trace::JsonlTraceWriter::FormatLine(
      123.5, trace::EventKind::kDeliver, message);
  auto event = trace::JsonlTraceWriter::ParseLine(line);
  ASSERT_TRUE(event.ok()) << event.status().ToString();
  EXPECT_DOUBLE_EQ(event->time, 123.5);
  EXPECT_EQ(event->kind, trace::EventKind::kDeliver);
  EXPECT_EQ(event->type, net::MessageType::kPush);
  EXPECT_EQ(event->from, 4u);
  EXPECT_EQ(event->to, 9u);
  EXPECT_EQ(event->subject, 7u);
  EXPECT_EQ(event->version, 3u);
  EXPECT_EQ(event->hops, 2u);
}

TEST(JsonlTraceWriterTest, ParseLineSkipsTrailerAndBlankLines) {
  EXPECT_TRUE(trace::JsonlTraceWriter::ParseLine("").status().IsNotFound());
  EXPECT_TRUE(trace::JsonlTraceWriter::ParseLine("  \t ")
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(trace::JsonlTraceWriter::ParseLine("#trace request=1/1")
                  .status()
                  .IsNotFound());
  EXPECT_FALSE(trace::JsonlTraceWriter::ParseLine("{\"t\":1}").ok());
  EXPECT_FALSE(trace::JsonlTraceWriter::ParseLine("not json").ok());
}

TEST(JsonlTraceWriterTest, CounterSamplingKeepsEveryNth) {
  std::FILE* stream = std::tmpfile();
  ASSERT_NE(stream, nullptr);
  trace::JsonlTraceWriter writer(stream, trace::TraceSampling::Every(3),
                                 /*owns_stream=*/true);
  for (int i = 0; i < 10; ++i) writer.OnSend(1.0 * i, PushMessage(0, 1));
  EXPECT_EQ(writer.events_seen(), 10u);
  EXPECT_EQ(writer.events_written(), 4u);  // Events 0, 3, 6, 9.
}

TEST(JsonlTraceWriterTest, ZeroDropsAClassEntirely) {
  std::FILE* stream = std::tmpfile();
  ASSERT_NE(stream, nullptr);
  auto sampling = trace::TraceSampling::Parse("1,1,0,1");
  ASSERT_TRUE(sampling.ok());
  trace::JsonlTraceWriter writer(stream, *sampling, /*owns_stream=*/true);
  for (int i = 0; i < 5; ++i) writer.OnSend(1.0 * i, PushMessage(0, 1));
  net::Message request;
  request.type = net::MessageType::kRequest;
  writer.OnDeliver(9.0, request);
  EXPECT_EQ(writer.events_seen(), 6u);
  EXPECT_EQ(writer.events_written(), 1u);  // Only the request survived.
}

TEST(TraceSamplingTest, ParseAcceptsUniformAndPerClassForms) {
  auto uniform = trace::TraceSampling::Parse("4");
  ASSERT_TRUE(uniform.ok());
  for (uint32_t e : uniform->every) EXPECT_EQ(e, 4u);

  auto per_class = trace::TraceSampling::Parse("1, 2, 0, 8");
  ASSERT_TRUE(per_class.ok());
  EXPECT_EQ(per_class->every[0], 1u);
  EXPECT_EQ(per_class->every[1], 2u);
  EXPECT_EQ(per_class->every[2], 0u);
  EXPECT_EQ(per_class->every[3], 8u);

  EXPECT_FALSE(trace::TraceSampling::Parse("").ok());
  EXPECT_FALSE(trace::TraceSampling::Parse("-1").ok());
  EXPECT_FALSE(trace::TraceSampling::Parse("1,2").ok());
  EXPECT_FALSE(trace::TraceSampling::Parse("a,b,c,d").ok());
}

// --------------------------------------------------------------------------
// Driver / replicator integration
// --------------------------------------------------------------------------

experiment::ExperimentConfig SmallConfig() {
  experiment::ExperimentConfig config;
  config.num_nodes = 64;
  config.lambda = 2.0;
  config.warmup_time = 0.0;
  config.measure_time = 1200.0;
  return config;
}

std::vector<std::string> ReadLines(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  EXPECT_NE(file, nullptr) << path;
  std::vector<std::string> lines;
  if (file == nullptr) return lines;
  std::string current;
  int c = 0;
  while ((c = std::fgetc(file)) != EOF) {
    if (c == '\n') {
      lines.push_back(current);
      current.clear();
    } else {
      current.push_back(static_cast<char>(c));
    }
  }
  if (!current.empty()) lines.push_back(current);
  std::fclose(file);
  return lines;
}

TEST(TraceIntegrationTest, DriverStreamsParsableTraceWithTrailer) {
  const std::string path = testing::TempDir() + "/dup_trace_driver.jsonl";
  experiment::ExperimentConfig config = SmallConfig();
  config.trace_path = path;

  experiment::SimulationDriver driver(config);
  ASSERT_TRUE(driver.Init().ok());
  driver.RunToCompletion();
  ASSERT_NE(driver.trace_writer(), nullptr);
  const uint64_t written = driver.trace_writer()->events_written();
  driver.trace_writer()->Finish();

  const std::vector<std::string> lines = ReadLines(path);
  ASSERT_FALSE(lines.empty());
  EXPECT_EQ(lines.back().rfind("#trace", 0), 0u) << lines.back();
  uint64_t parsed = 0;
  for (const std::string& line : lines) {
    auto event = trace::JsonlTraceWriter::ParseLine(line);
    if (event.status().IsNotFound()) continue;  // Trailer.
    ASSERT_TRUE(event.ok()) << line;
    ++parsed;
  }
  EXPECT_EQ(parsed, written);
  EXPECT_GT(parsed, 0u);
  std::remove(path.c_str());
}

TEST(TraceIntegrationTest, SampledTracingDoesNotPerturbMetrics) {
  const experiment::ExperimentConfig plain = SmallConfig();
  auto baseline = experiment::SimulationDriver::Run(plain);
  ASSERT_TRUE(baseline.ok());

  experiment::ExperimentConfig traced = SmallConfig();
  traced.trace_path = testing::TempDir() + "/dup_trace_determinism.jsonl";
  traced.trace_sample = "10,0,1,2";  // Uneven on purpose: still no RNG.
  auto with_trace = experiment::SimulationDriver::Run(traced);
  ASSERT_TRUE(with_trace.ok());

  EXPECT_EQ(baseline->queries, with_trace->queries);
  EXPECT_EQ(baseline->avg_latency_hops, with_trace->avg_latency_hops);
  EXPECT_EQ(baseline->avg_cost_hops, with_trace->avg_cost_hops);
  EXPECT_EQ(baseline->local_hit_rate, with_trace->local_hit_rate);
  EXPECT_EQ(baseline->stale_rate, with_trace->stale_rate);
  EXPECT_EQ(baseline->hops.total(), with_trace->hops.total());
  EXPECT_EQ(baseline->latency_p95, with_trace->latency_p95);
  EXPECT_EQ(baseline->latency_p99, with_trace->latency_p99);
  std::remove(traced.trace_path.c_str());
}

TEST(TraceIntegrationTest, ReplicatorDerivesUniquePerRunPaths) {
  const std::string base = testing::TempDir() + "/dup_trace_sweep.jsonl";
  experiment::ExperimentConfig config = SmallConfig();
  config.measure_time = 600.0;
  config.trace_path = base;

  auto sweep = experiment::RunSweep({config}, /*replications=*/2, /*jobs=*/2);
  ASSERT_TRUE(sweep.ok()) << sweep.status().ToString();

  const std::string rep0 = testing::TempDir() + "/dup_trace_sweep.p0.r0.jsonl";
  const std::string rep1 = testing::TempDir() + "/dup_trace_sweep.p0.r1.jsonl";
  for (const std::string& path : {rep0, rep1}) {
    std::FILE* file = std::fopen(path.c_str(), "rb");
    EXPECT_NE(file, nullptr) << path << " was not written";
    if (file != nullptr) std::fclose(file);
    std::remove(path.c_str());
  }
}

TEST(ExperimentConfigTest, ValidateRejectsBadTraceSampling) {
  experiment::ExperimentConfig config;
  config.trace_sample = "1,2";
  EXPECT_FALSE(config.Validate().ok());
  config.trace_sample = "nope";
  EXPECT_FALSE(config.Validate().ok());
  config.trace_sample = "0";
  EXPECT_TRUE(config.Validate().ok());
}

// --------------------------------------------------------------------------
// benchdiff comparison engine
// --------------------------------------------------------------------------

util::JsonValue BenchDoc(double events_per_second, double wall_seconds) {
  util::JsonValue manifest = util::JsonValue::MakeObject();
  manifest.Set("schema_version", metrics::RunManifest::kSchemaVersion);
  util::JsonValue inner = util::JsonValue::MakeObject();
  inner.Set("events_per_second", events_per_second);
  inner.Set("wall_seconds", wall_seconds);
  inner.Set("pool_slots", 128);  // Informational: never gated.
  util::JsonValue doc = util::JsonValue::MakeObject();
  doc.Set("manifest", std::move(manifest));
  doc.Set("engine", std::move(inner));
  return doc;
}

TEST(BenchCompareTest, UnchangedInputsPass) {
  auto report =
      metrics::CompareBenchJson(BenchDoc(1e6, 2.0), BenchDoc(1e6, 2.0));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->ok());
  EXPECT_EQ(report->regressions, 0u);
  EXPECT_EQ(report->improvements, 0u);
  EXPECT_FALSE(report->deltas.empty());
}

TEST(BenchCompareTest, SmallDriftStaysInsideThreshold) {
  auto report =
      metrics::CompareBenchJson(BenchDoc(1e6, 2.0), BenchDoc(0.9e6, 2.2));
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->ToString();
}

TEST(BenchCompareTest, ThroughputDropIsARegression) {
  auto report =
      metrics::CompareBenchJson(BenchDoc(1e6, 2.0), BenchDoc(0.5e6, 2.0));
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->ok());
  EXPECT_EQ(report->regressions, 1u);
}

TEST(BenchCompareTest, WallClockDropIsAnImprovement) {
  auto report =
      metrics::CompareBenchJson(BenchDoc(1e6, 2.0), BenchDoc(1e6, 1.0));
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok());
  EXPECT_EQ(report->improvements, 1u);
}

TEST(BenchCompareTest, InformationalMetricsAreNeverGated) {
  util::JsonValue baseline = BenchDoc(1e6, 2.0);
  util::JsonValue current = BenchDoc(1e6, 2.0);
  current.AsObject().at("engine").Set("pool_slots", 4096);
  auto report = metrics::CompareBenchJson(baseline, current);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->ToString();
}

TEST(BenchCompareTest, ThresholdIsConfigurable) {
  metrics::CompareOptions strict;
  strict.threshold = 0.05;
  auto report = metrics::CompareBenchJson(BenchDoc(1e6, 2.0),
                                          BenchDoc(0.9e6, 2.0), strict);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->ok());
}

TEST(BenchCompareTest, SampleArraysCompareThroughConfidenceIntervals) {
  const auto doc_with_samples = [](std::vector<double> samples) {
    util::JsonValue array = util::JsonValue::MakeArray();
    for (double s : samples) array.Append(s);
    util::JsonValue doc = util::JsonValue::MakeObject();
    doc.Set("latency_samples", std::move(array));
    return doc;
  };
  // Wildly overlapping CIs: the mean moved > threshold but inside noise.
  auto noisy = metrics::CompareBenchJson(
      doc_with_samples({1.0, 9.0, 2.0, 8.0}),
      doc_with_samples({4.0, 12.0, 5.0, 11.0}));
  ASSERT_TRUE(noisy.ok());
  EXPECT_TRUE(noisy->ok()) << noisy->ToString();

  // Tight CIs far apart: a real latency regression.
  auto real = metrics::CompareBenchJson(
      doc_with_samples({1.0, 1.01, 0.99, 1.0}),
      doc_with_samples({2.0, 2.01, 1.99, 2.0}));
  ASSERT_TRUE(real.ok());
  EXPECT_FALSE(real->ok());
}

TEST(BenchCompareTest, NewMetricsInOnlyOneFileAreIgnored) {
  util::JsonValue current = BenchDoc(1e6, 2.0);
  current.Set("brand_new_latency", 42.0);
  auto report = metrics::CompareBenchJson(BenchDoc(1e6, 2.0), current);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok());
}

TEST(BenchCompareTest, SchemaVersionMismatchIsAnError) {
  util::JsonValue current = BenchDoc(1e6, 2.0);
  current.AsObject().at("manifest").Set(
      "schema_version", metrics::RunManifest::kSchemaVersion + 1);
  auto report = metrics::CompareBenchJson(BenchDoc(1e6, 2.0), current);
  EXPECT_FALSE(report.ok());
}

}  // namespace
}  // namespace dupnet
