// Property tests pinning the calendar scheduler to the binary heap: both
// must produce the exact (time, seq) FIFO total order for any push/pop
// interleaving, because golden RunMetrics (regression_test.cc) are
// bit-identical only if the schedulers are pop-for-pop interchangeable.

#include <cstdint>
#include <vector>

#include "gtest/gtest.h"
#include "sim/engine.h"
#include "sim/event_queue.h"
#include "util/rng.h"

namespace dupnet::sim {
namespace {

struct RecordingTarget : EventTarget {
  void OnSimEvent(uint32_t, uint64_t) override {}
};

struct PoppedEvent {
  SimTime time;
  uint64_t seq;
  uint64_t arg;

  bool operator==(const PoppedEvent& other) const {
    return time == other.time && seq == other.seq && arg == other.arg;
  }
};

/// One scripted op: push `count` events at `time`, then pop `pops` events.
struct Op {
  SimTime time = 0.0;
  uint32_t pushes = 0;
  uint32_t pops = 0;
};

/// Runs the same op stream through one queue and returns its pop order.
std::vector<PoppedEvent> Drive(SchedulerKind kind, const std::vector<Op>& ops,
                               bool reserve) {
  EventQueue queue;
  queue.set_scheduler(kind);
  if (reserve) queue.Reserve(64);
  RecordingTarget target;
  std::vector<PoppedEvent> popped;
  uint64_t next_arg = 0;
  for (const Op& op : ops) {
    for (uint32_t i = 0; i < op.pushes; ++i) {
      queue.Push(op.time, &target, /*code=*/0, next_arg++);
    }
    for (uint32_t i = 0; i < op.pops && !queue.empty(); ++i) {
      const Event e = queue.Pop();
      popped.push_back({e.time, e.seq, e.arg});
    }
  }
  while (!queue.empty()) {
    const Event e = queue.Pop();
    popped.push_back({e.time, e.seq, e.arg});
  }
  return popped;
}

void ExpectIdenticalPopOrder(const std::vector<Op>& ops) {
  for (bool reserve : {false, true}) {
    const auto heap = Drive(SchedulerKind::kHeap, ops, reserve);
    const auto calendar = Drive(SchedulerKind::kCalendar, ops, reserve);
    ASSERT_EQ(heap.size(), calendar.size());
    for (size_t i = 0; i < heap.size(); ++i) {
      ASSERT_EQ(heap[i], calendar[i])
          << "divergence at pop " << i << " (reserve=" << reserve << ")";
    }
  }
}

TEST(SchedulerEquivalenceTest, SameTimestampBurstsPopInFifoOrder) {
  // Many events at identical timestamps: the order must be pure FIFO, the
  // case the calendar's same-time lane handling could most easily break.
  std::vector<Op> ops;
  for (int round = 0; round < 8; ++round) {
    ops.push_back({1.0, /*pushes=*/32, /*pops=*/0});
    ops.push_back({1.0, /*pushes=*/32, /*pops=*/16});
    ops.push_back({2.0, /*pushes=*/16, /*pops=*/48});
  }
  ExpectIdenticalPopOrder(ops);
}

TEST(SchedulerEquivalenceTest, FarFutureSpillRedistributes) {
  // A near-term working set plus events far beyond the calendar year
  // (soft-state refresh timers, retry backoffs): the overflow chain must
  // redistribute into later years in exact order.
  std::vector<Op> ops;
  for (int i = 0; i < 64; ++i) {
    ops.push_back({0.001 * i, /*pushes=*/4, /*pops=*/0});
    ops.push_back({1000.0 + 17.0 * i, /*pushes=*/2, /*pops=*/3});
  }
  ops.push_back({2000.0, /*pushes=*/1, /*pops=*/64});
  ExpectIdenticalPopOrder(ops);
}

TEST(SchedulerEquivalenceTest, RandomisedChurnMatchesHeapExactly) {
  // Randomised interleavings with monotone "now", duplicate timestamps,
  // bursts, and occasional far-future pushes — the full contract.
  util::Rng rng(0xfeed5eedu);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Op> ops;
    SimTime now = 0.0;
    for (int step = 0; step < 200; ++step) {
      Op op;
      const double kind = rng.UniformDouble(0.0, 1.0);
      if (kind < 0.70) {
        op.time = now + rng.UniformDouble(0.0, 2.0);
      } else if (kind < 0.85) {
        op.time = now;  // Same-timestamp burst.
      } else {
        op.time = now + rng.UniformDouble(100.0, 5000.0);  // Far future.
      }
      op.pushes = static_cast<uint32_t>(rng.UniformInt(0, 8));
      op.pops = static_cast<uint32_t>(rng.UniformInt(0, 6));
      ops.push_back(op);
      now += rng.UniformDouble(0.0, 0.5);
    }
    ExpectIdenticalPopOrder(ops);
  }
}

TEST(SchedulerEquivalenceTest, DrainToEmptyAndReanchor) {
  // Repeatedly drain the queue completely, then push behind/ahead of the
  // previous anchor: the calendar must re-anchor at the new first event.
  std::vector<Op> ops;
  for (int round = 0; round < 10; ++round) {
    const double base = 50.0 * round;
    ops.push_back({base + 5.0, /*pushes=*/8, /*pops=*/0});
    ops.push_back({base + 0.5, /*pushes=*/8, /*pops=*/100});  // Drain all.
  }
  ExpectIdenticalPopOrder(ops);
}

TEST(SchedulerEquivalenceTest, EngineRunsIdenticallyOnBothSchedulers) {
  // End-to-end: the same closure workload on two engines, one per
  // scheduler, fires in the same order at the same times.
  for (SchedulerKind kind : {SchedulerKind::kHeap, SchedulerKind::kCalendar}) {
    Engine engine;
    engine.set_scheduler(kind);
    std::vector<int> order;
    engine.ScheduleAt(2.0, [&order] { order.push_back(1); });
    engine.ScheduleAt(1.0, [&order, &engine] {
      order.push_back(2);
      engine.ScheduleAt(1.0, [&order] { order.push_back(3); });  // Same time.
      engine.ScheduleAt(1.5, [&order] { order.push_back(4); });
    });
    engine.Run();
    EXPECT_EQ(order, (std::vector<int>{2, 3, 4, 1}))
        << "scheduler kind " << static_cast<int>(kind);
  }
}

#ifndef DUP_ENABLE_DCHECKS
TEST(SchedulerEquivalenceTest, ScheduleAtInThePastClampsToNow) {
  // Release-build contract (docs/simulator.md): a past timestamp is
  // clamped to now (debug builds assert instead — hence the gate above).
  Engine engine;
  std::vector<SimTime> fired_at;
  engine.ScheduleAt(5.0, [&] {
    engine.ScheduleAt(1.0, [&] { fired_at.push_back(engine.Now()); });
  });
  engine.ScheduleAt(6.0, [&] { fired_at.push_back(engine.Now()); });
  engine.Run();
  ASSERT_EQ(fired_at.size(), 2u);
  EXPECT_EQ(fired_at[0], 5.0);  // Clamped, not 1.0 — and time never ran
  EXPECT_EQ(fired_at[1], 6.0);  // backwards for the later event.
}
#endif  // DUP_ENABLE_DCHECKS

}  // namespace
}  // namespace dupnet::sim
