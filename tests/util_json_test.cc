#include "util/json.h"

#include <gtest/gtest.h>

namespace dupnet::util {
namespace {

TEST(JsonTest, ScalarRoundTrip) {
  for (const char* doc : {"null", "true", "false", "0", "-17", "3.5",
                          "\"hello\"", "[]", "{}"}) {
    auto parsed = JsonValue::Parse(doc);
    ASSERT_TRUE(parsed.ok()) << doc << ": " << parsed.status().ToString();
    EXPECT_EQ(parsed->Dump(), doc);
  }
}

TEST(JsonTest, ObjectAccessors) {
  auto parsed = JsonValue::Parse(
      R"({"name": "dup", "nodes": 4096, "lossy": false, "rates": [1, 2.5]})");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_TRUE(parsed->is_object());
  EXPECT_EQ(parsed->Find("name")->AsString(), "dup");
  EXPECT_EQ(parsed->Find("nodes")->AsDouble(), 4096.0);
  EXPECT_FALSE(parsed->Find("lossy")->AsBool());
  ASSERT_EQ(parsed->Find("rates")->AsArray().size(), 2u);
  EXPECT_EQ(parsed->Find("rates")->AsArray()[1].AsDouble(), 2.5);
  EXPECT_EQ(parsed->Find("absent"), nullptr);
}

TEST(JsonTest, BuildDumpParseEquality) {
  JsonValue object = JsonValue::MakeObject();
  object.Set("schema", 1);
  object.Set("seed", uint64_t{12345678901234567ull});
  object.Set("ratio", 0.8517364201);
  object.Set("label", "fig4 \"query rate\"\n");
  JsonValue array = JsonValue::MakeArray();
  array.Append(1.5);
  array.Append(nullptr);
  array.Append(true);
  object.Set("series", std::move(array));

  for (const int indent : {0, 2}) {
    auto reparsed = JsonValue::Parse(object.Dump(indent));
    ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
    EXPECT_EQ(*reparsed, object) << "indent=" << indent;
  }
}

TEST(JsonTest, DoublesRoundTripBitIdentically) {
  for (const double value :
       {0.40491626148028059, 1.0 / 3.0, 1e-9, 123456789.123456789,
        9.007199254740992e15, -0.0097534543484150641}) {
    JsonValue json(value);
    auto reparsed = JsonValue::Parse(json.Dump());
    ASSERT_TRUE(reparsed.ok());
    EXPECT_EQ(reparsed->AsDouble(), value);
  }
}

TEST(JsonTest, StringEscapes) {
  JsonValue json(std::string("a\"b\\c\nd\te\x01"));
  const std::string dumped = json.Dump();
  EXPECT_EQ(dumped, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
  auto reparsed = JsonValue::Parse(dumped);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(*reparsed, json);
}

TEST(JsonTest, NestedPrettyPrintIsStable) {
  auto parsed = JsonValue::Parse(R"({"b": {"y": [1, 2]}, "a": 1})");
  ASSERT_TRUE(parsed.ok());
  // Keys are canonically sorted and the pretty form re-parses to the same
  // document.
  const std::string pretty = parsed->Dump(2);
  EXPECT_LT(pretty.find("\"a\""), pretty.find("\"b\""));
  auto reparsed = JsonValue::Parse(pretty);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(*reparsed, *parsed);
}

TEST(JsonTest, ParseErrors) {
  for (const char* doc :
       {"", "{", "[1,", "{\"a\" 1}", "tru", "\"unterminated", "1 2",
        "{\"a\": }", "[1, 2,]", "nan"}) {
    auto parsed = JsonValue::Parse(doc);
    EXPECT_FALSE(parsed.ok()) << "should reject: " << doc;
  }
}

TEST(JsonTest, DeepNestingRejectedNotCrashing) {
  std::string deep(1000, '[');
  deep += std::string(1000, ']');
  EXPECT_FALSE(JsonValue::Parse(deep).ok());
}

}  // namespace
}  // namespace dupnet::util
