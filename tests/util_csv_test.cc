#include "util/csv.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

namespace dupnet::util {
namespace {

TEST(CsvWriterTest, HeaderOnly) {
  CsvWriter csv({"a", "b"});
  EXPECT_EQ(csv.ToString(), "a,b\n");
  EXPECT_EQ(csv.rows(), 0u);
}

TEST(CsvWriterTest, SimpleRows) {
  CsvWriter csv({"x", "y"});
  csv.AddRow({"1", "2"});
  csv.AddRow({"3", "4"});
  EXPECT_EQ(csv.ToString(), "x,y\n1,2\n3,4\n");
}

TEST(CsvWriterTest, QuotesSpecialCharacters) {
  CsvWriter csv({"field"});
  csv.AddRow({"has,comma"});
  csv.AddRow({"has\"quote"});
  csv.AddRow({"has\nnewline"});
  EXPECT_EQ(csv.ToString(),
            "field\n\"has,comma\"\n\"has\"\"quote\"\n\"has\nnewline\"\n");
}

TEST(CsvWriterTest, NumericCells) {
  EXPECT_EQ(CsvWriter::Cell(1.5), "1.5");
  EXPECT_EQ(CsvWriter::Cell(uint64_t{42}), "42");
  EXPECT_EQ(CsvWriter::Cell(0.000012345), "1.2345e-05");
}

TEST(CsvWriterTest, WritesFile) {
  CsvWriter csv({"k", "v"});
  csv.AddRow({"latency", "0.5"});
  const std::string path = ::testing::TempDir() + "/dup_csv_test.csv";
  ASSERT_TRUE(csv.WriteToFile(path).ok());
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), "k,v\nlatency,0.5\n");
  std::remove(path.c_str());
}

TEST(CsvWriterTest, RejectsUnwritablePath) {
  CsvWriter csv({"a"});
  EXPECT_TRUE(
      csv.WriteToFile("/nonexistent-dir/x/y.csv").IsUnavailable());
}

}  // namespace
}  // namespace dupnet::util
