#include "util/config.h"

#include <gtest/gtest.h>

namespace dupnet::util {
namespace {

ConfigMap MustParse(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  auto result =
      ConfigMap::FromArgs(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return *result;
}

TEST(ConfigMapTest, ParsesKeyValuePairs) {
  const ConfigMap config = MustParse({"nodes=4096", "lambda=1.5"});
  EXPECT_TRUE(config.Has("nodes"));
  EXPECT_TRUE(config.Has("lambda"));
  EXPECT_FALSE(config.Has("theta"));
}

TEST(ConfigMapTest, RejectsMissingEquals) {
  const char* argv[] = {"prog", "nodes"};
  EXPECT_TRUE(ConfigMap::FromArgs(2, argv).status().IsInvalidArgument());
}

TEST(ConfigMapTest, RejectsEmptyKey) {
  const char* argv[] = {"prog", "=5"};
  EXPECT_TRUE(ConfigMap::FromArgs(2, argv).status().IsInvalidArgument());
}

TEST(ConfigMapTest, EmptyArgsOk) {
  const char* argv[] = {"prog"};
  EXPECT_TRUE(ConfigMap::FromArgs(1, argv).ok());
}

TEST(ConfigMapTest, GetStringWithFallback) {
  const ConfigMap config = MustParse({"scheme=dup"});
  EXPECT_EQ(config.GetString("scheme", "pcx"), "dup");
  EXPECT_EQ(config.GetString("missing", "pcx"), "pcx");
}

TEST(ConfigMapTest, GetIntWithFallback) {
  const ConfigMap config = MustParse({"n=12"});
  EXPECT_EQ(config.GetInt("n", 5), 12);
  EXPECT_EQ(config.GetInt("m", 5), 5);
}

TEST(ConfigMapTest, GetDoubleWithFallback) {
  const ConfigMap config = MustParse({"x=2.5"});
  EXPECT_DOUBLE_EQ(config.GetDouble("x", 1.0), 2.5);
  EXPECT_DOUBLE_EQ(config.GetDouble("y", 1.0), 1.0);
}

TEST(ConfigMapTest, GetBoolAcceptsCommonSpellings) {
  const ConfigMap config = MustParse({"a=1", "b=true", "c=off", "d=no"});
  EXPECT_TRUE(config.GetBool("a", false));
  EXPECT_TRUE(config.GetBool("b", false));
  EXPECT_FALSE(config.GetBool("c", true));
  EXPECT_FALSE(config.GetBool("d", true));
  EXPECT_TRUE(config.GetBool("missing", true));
}

TEST(ConfigMapTest, LastValueWins) {
  const ConfigMap config = MustParse({"k=1", "k=2"});
  EXPECT_EQ(config.GetInt("k", 0), 2);
}

TEST(ConfigMapTest, ValueMayContainEquals) {
  const ConfigMap config = MustParse({"expr=a=b"});
  EXPECT_EQ(config.GetString("expr", ""), "a=b");
}

}  // namespace
}  // namespace dupnet::util
