#include "pastry/pastry.h"

#include <set>

#include <gtest/gtest.h>

namespace dupnet::pastry {
namespace {

TEST(PastryDigitsTest, DigitAtExtractsNibbles) {
  const PastryId id = 0x123456789ABCDEF0ULL;
  EXPECT_EQ(DigitAt(id, 0), 0x1);
  EXPECT_EQ(DigitAt(id, 1), 0x2);
  EXPECT_EQ(DigitAt(id, 14), 0xF);
  EXPECT_EQ(DigitAt(id, 15), 0x0);
}

TEST(PastryDigitsTest, SharedPrefixLength) {
  EXPECT_EQ(SharedPrefixLength(0x1234000000000000ULL,
                               0x1234FFFFFFFFFFFFULL),
            4);
  EXPECT_EQ(SharedPrefixLength(0xAAAAAAAAAAAAAAAAULL,
                               0xAAAAAAAAAAAAAAAAULL),
            16);
  EXPECT_EQ(SharedPrefixLength(0x0, 0xF000000000000000ULL), 0);
}

TEST(PastryNetworkTest, CreateValidations) {
  EXPECT_FALSE(PastryNetwork::Create(0).ok());
  EXPECT_FALSE(PastryNetwork::Create(8, 3).ok());  // Odd leaf set.
  EXPECT_TRUE(PastryNetwork::Create(8, 4).ok());
}

TEST(PastryNetworkTest, SingleNode) {
  auto network = PastryNetwork::Create(1);
  ASSERT_TRUE(network.ok());
  EXPECT_EQ(network->AuthorityOf(12345), 0u);
  EXPECT_EQ(network->NextHop(0, 12345), 0u);
}

TEST(PastryNetworkTest, AuthorityIsNumericallyClosest) {
  auto network = PastryNetwork::Create(64);
  ASSERT_TRUE(network.ok());
  const PastryId key = PastryNetwork::KeyForName("some-key");
  const NodeId authority = network->AuthorityOf(key);
  auto distance = [&](NodeId n) {
    const PastryId id = network->IdOf(n);
    const uint64_t fwd = id - key;
    const uint64_t bwd = key - id;
    return std::min(fwd, bwd);
  };
  for (NodeId n = 0; n < 64; ++n) {
    EXPECT_GE(distance(n), distance(authority)) << "node " << n;
  }
}

TEST(PastryNetworkTest, LeafSetsHoldNumericNeighbors) {
  auto network = PastryNetwork::Create(32, 8);
  ASSERT_TRUE(network.ok());
  for (NodeId n = 0; n < 32; ++n) {
    const auto& leaves = network->LeafSetOf(n);
    EXPECT_GE(leaves.size(), 4u);
    EXPECT_LE(leaves.size(), 8u);
    for (NodeId leaf : leaves) EXPECT_NE(leaf, n);
  }
}

TEST(PastryNetworkTest, RoutingEntriesShareRequiredPrefix) {
  auto network = PastryNetwork::Create(128);
  ASSERT_TRUE(network.ok());
  for (NodeId n = 0; n < 128; ++n) {
    const PastryId self = network->IdOf(n);
    for (int row = 0; row < 4; ++row) {  // Deep rows are mostly empty.
      for (int col = 0; col < kDigitRange; ++col) {
        const NodeId entry = network->RoutingEntry(n, row, col);
        if (entry == kInvalidNode) continue;
        const PastryId id = network->IdOf(entry);
        EXPECT_GE(SharedPrefixLength(id, self), row);
        EXPECT_EQ(DigitAt(id, row), col);
      }
    }
  }
}

TEST(PastryNetworkTest, RoutesConvergeFromEveryNode) {
  auto network = PastryNetwork::Create(256);
  ASSERT_TRUE(network.ok());
  const PastryId key = PastryNetwork::KeyForName("target");
  const NodeId authority = network->AuthorityOf(key);
  for (NodeId n = 0; n < 256; ++n) {
    auto path = network->RoutePath(n, key);
    ASSERT_TRUE(path.ok()) << "from " << n << ": "
                           << path.status().ToString();
    EXPECT_EQ(path->back(), authority);
  }
}

TEST(PastryNetworkTest, RoutesAreLogarithmicallyShort) {
  auto network = PastryNetwork::Create(1024);
  ASSERT_TRUE(network.ok());
  const PastryId key = PastryNetwork::KeyForName("hot");
  double total = 0;
  for (NodeId n = 0; n < 1024; ++n) {
    auto path = network->RoutePath(n, key);
    ASSERT_TRUE(path.ok());
    total += static_cast<double>(path->size() - 1);
    // log_16(1024) = 2.5; generous bound.
    EXPECT_LE(path->size() - 1, 10u);
  }
  EXPECT_LT(total / 1024.0, 5.0);
}

TEST(PastryNetworkTest, BuildsSpanningIndexTree) {
  auto network = PastryNetwork::Create(200);
  ASSERT_TRUE(network.ok());
  auto tree = network->BuildIndexTreeForKeyName("the-index");
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->size(), 200u);
  EXPECT_TRUE(tree->Validate().ok());
  EXPECT_EQ(tree->root(),
            network->AuthorityOf(PastryNetwork::KeyForName("the-index")));
}

TEST(PastryNetworkTest, DifferentKeysDifferentAuthorities) {
  auto network = PastryNetwork::Create(128);
  ASSERT_TRUE(network.ok());
  std::set<NodeId> authorities;
  for (int i = 0; i < 12; ++i) {
    authorities.insert(network->AuthorityOf(
        PastryNetwork::KeyForName("key-" + std::to_string(i))));
  }
  EXPECT_GT(authorities.size(), 6u);
}

class PastrySizeSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(PastrySizeSweep, TreesSpanAtEverySize) {
  auto network = PastryNetwork::Create(GetParam());
  ASSERT_TRUE(network.ok());
  auto tree = network->BuildIndexTreeForKeyName("sweep");
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->size(), GetParam());
  EXPECT_TRUE(tree->Validate().ok());
}

INSTANTIATE_TEST_SUITE_P(Sizes, PastrySizeSweep,
                         ::testing::Values(size_t{2}, size_t{10}, size_t{64},
                                           size_t{500}, size_t{2048}));

}  // namespace
}  // namespace dupnet::pastry
