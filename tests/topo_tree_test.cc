#include "topo/tree.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "test_util.h"

namespace dupnet::topo {
namespace {

using ::dupnet::testing::MakePaperTree;

TEST(TreeTest, SingleNodeTree) {
  IndexSearchTree tree(5);
  EXPECT_EQ(tree.root(), 5u);
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_TRUE(tree.Contains(5));
  EXPECT_FALSE(tree.Contains(1));
  EXPECT_EQ(tree.Parent(5), kInvalidNode);
  EXPECT_TRUE(tree.Children(5).empty());
  EXPECT_TRUE(tree.Validate().ok());
}

TEST(TreeTest, PaperTreeStructure) {
  IndexSearchTree tree = MakePaperTree();
  EXPECT_EQ(tree.size(), 8u);
  EXPECT_EQ(tree.root(), 1u);
  EXPECT_EQ(tree.Parent(6), 5u);
  EXPECT_EQ(tree.Parent(4), 3u);
  ASSERT_EQ(tree.Children(3).size(), 2u);
  EXPECT_EQ(tree.Children(3)[0], 4u);
  EXPECT_EQ(tree.Children(3)[1], 5u);
  EXPECT_TRUE(tree.Validate().ok());
}

TEST(TreeTest, DepthMatchesPaperFigure) {
  IndexSearchTree tree = MakePaperTree();
  EXPECT_EQ(tree.Depth(1), 0u);
  EXPECT_EQ(tree.Depth(2), 1u);
  EXPECT_EQ(tree.Depth(3), 2u);
  EXPECT_EQ(tree.Depth(4), 3u);
  EXPECT_EQ(tree.Depth(6), 4u);
  EXPECT_EQ(tree.Depth(7), 5u);
}

TEST(TreeTest, PathToRoot) {
  IndexSearchTree tree = MakePaperTree();
  const auto path = tree.PathToRoot(6);
  EXPECT_EQ(path, (std::vector<NodeId>{6, 5, 3, 2, 1}));
  EXPECT_EQ(tree.PathToRoot(1), std::vector<NodeId>{1});
}

TEST(TreeTest, NearestCommonAncestor) {
  IndexSearchTree tree = MakePaperTree();
  // The paper: "N3, the nearest common parent of N4 and N6".
  EXPECT_EQ(tree.NearestCommonAncestor(4, 6), 3u);
  EXPECT_EQ(tree.NearestCommonAncestor(7, 8), 6u);
  EXPECT_EQ(tree.NearestCommonAncestor(4, 4), 4u);
  EXPECT_EQ(tree.NearestCommonAncestor(6, 1), 1u);
  EXPECT_EQ(tree.NearestCommonAncestor(6, 7), 6u);
}

TEST(TreeTest, NodesPreOrderVisitsAllOnce) {
  IndexSearchTree tree = MakePaperTree();
  auto order = tree.NodesPreOrder();
  EXPECT_EQ(order.size(), 8u);
  EXPECT_EQ(order.front(), 1u);
  std::sort(order.begin(), order.end());
  EXPECT_EQ(order, (std::vector<NodeId>{1, 2, 3, 4, 5, 6, 7, 8}));
}

TEST(TreeTest, AttachLeafErrors) {
  IndexSearchTree tree = MakePaperTree();
  EXPECT_TRUE(tree.AttachLeaf(99, 10).IsNotFound());
  EXPECT_TRUE(tree.AttachLeaf(1, 6).IsAlreadyExists());
  EXPECT_TRUE(tree.AttachLeaf(1, kInvalidNode).IsInvalidArgument());
}

TEST(TreeTest, SplitEdgeInsertsBetween) {
  IndexSearchTree tree = MakePaperTree();
  // Paper Section III-C: "a new node N3' is inserted between N3 and N5".
  ASSERT_TRUE(tree.SplitEdge(3, 5, 35).ok());
  EXPECT_EQ(tree.Parent(5), 35u);
  EXPECT_EQ(tree.Parent(35), 3u);
  // N3' takes N5's slot in N3's child order.
  EXPECT_EQ(tree.Children(3), (std::vector<NodeId>{4, 35}));
  EXPECT_EQ(tree.Children(35), std::vector<NodeId>{5});
  EXPECT_TRUE(tree.Validate().ok());
  EXPECT_EQ(tree.Depth(6), 5u);
}

TEST(TreeTest, SplitEdgeErrors) {
  IndexSearchTree tree = MakePaperTree();
  EXPECT_TRUE(tree.SplitEdge(99, 5, 10).IsNotFound());
  EXPECT_TRUE(tree.SplitEdge(3, 6, 10).IsInvalidArgument());  // Not an edge.
  EXPECT_TRUE(tree.SplitEdge(3, 5, 6).IsAlreadyExists());
  EXPECT_TRUE(tree.SplitEdge(3, 5, kInvalidNode).IsInvalidArgument());
}

TEST(TreeTest, RemoveLeaf) {
  IndexSearchTree tree = MakePaperTree();
  auto replacement = tree.RemoveNode(7);
  ASSERT_TRUE(replacement.ok());
  EXPECT_EQ(*replacement, 6u);
  EXPECT_FALSE(tree.Contains(7));
  EXPECT_EQ(tree.Children(6), std::vector<NodeId>{8});
  EXPECT_TRUE(tree.Validate().ok());
}

TEST(TreeTest, RemoveInnerNodeReparentsChildrenInPlace) {
  IndexSearchTree tree = MakePaperTree();
  auto replacement = tree.RemoveNode(5);
  ASSERT_TRUE(replacement.ok());
  EXPECT_EQ(*replacement, 3u);
  EXPECT_EQ(tree.Parent(6), 3u);
  // N6 takes N5's position in N3's child order.
  EXPECT_EQ(tree.Children(3), (std::vector<NodeId>{4, 6}));
  EXPECT_TRUE(tree.Validate().ok());
}

TEST(TreeTest, RemoveNodeWithMultipleChildren) {
  IndexSearchTree tree = MakePaperTree();
  ASSERT_TRUE(tree.RemoveNode(6).ok());
  EXPECT_EQ(tree.Parent(7), 5u);
  EXPECT_EQ(tree.Parent(8), 5u);
  EXPECT_EQ(tree.Children(5), (std::vector<NodeId>{7, 8}));
  EXPECT_TRUE(tree.Validate().ok());
}

TEST(TreeTest, RemoveRootPromotesFirstChild) {
  IndexSearchTree tree = MakePaperTree();
  // Give the root a second child so the promotion re-attaches siblings.
  ASSERT_TRUE(tree.AttachLeaf(1, 9).ok());
  auto replacement = tree.RemoveNode(1);
  ASSERT_TRUE(replacement.ok());
  EXPECT_EQ(*replacement, 2u);
  EXPECT_EQ(tree.root(), 2u);
  EXPECT_EQ(tree.Parent(2), kInvalidNode);
  EXPECT_EQ(tree.Parent(9), 2u);
  EXPECT_TRUE(tree.Validate().ok());
  EXPECT_EQ(tree.size(), 8u);
}

TEST(TreeTest, RemoveErrors) {
  IndexSearchTree tree(1);
  EXPECT_TRUE(tree.RemoveNode(9).status().IsNotFound());
  EXPECT_TRUE(tree.RemoveNode(1).status().IsFailedPrecondition());
}

TEST(TreeTest, AverageAndMaxDepth) {
  IndexSearchTree tree = MakePaperTree();
  // Depths: 0,1,2,3,3,4,5,5 -> total 23, avg 23/8.
  EXPECT_DOUBLE_EQ(tree.AverageDepth(), 23.0 / 8.0);
  EXPECT_EQ(tree.MaxDepth(), 5u);
}

TEST(TreeTest, SequentialChurnKeepsTreeValid) {
  IndexSearchTree tree = MakePaperTree();
  ASSERT_TRUE(tree.SplitEdge(2, 3, 23).ok());
  ASSERT_TRUE(tree.AttachLeaf(23, 30).ok());
  ASSERT_TRUE(tree.RemoveNode(3).ok());
  ASSERT_TRUE(tree.RemoveNode(30).ok());
  ASSERT_TRUE(tree.AttachLeaf(5, 31).ok());
  EXPECT_TRUE(tree.Validate().ok());
  // 8 original + 23 + 30 + 31 joined - 3 and 30 removed = 9.
  EXPECT_EQ(tree.size(), 9u);
  // N3 removed: its children 4 and 5 now hang from 23.
  EXPECT_EQ(tree.Parent(4), 23u);
  EXPECT_EQ(tree.Parent(5), 23u);
}

}  // namespace
}  // namespace dupnet::topo
