#include "core/subscriber_list.h"

#include <gtest/gtest.h>

namespace dupnet::core {
namespace {

TEST(SubscriberListTest, StartsEmpty) {
  SubscriberList list;
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.size(), 0u);
  EXPECT_FALSE(list.HasSelf());
}

TEST(SubscriberListTest, SetNewBranchReturnsTrue) {
  SubscriberList list;
  EXPECT_TRUE(list.Set(5, 6));
  EXPECT_EQ(list.size(), 1u);
  EXPECT_TRUE(list.HasBranch(5));
  EXPECT_EQ(list.Get(5), std::optional<NodeId>(6));
}

TEST(SubscriberListTest, SetExistingBranchOverwrites) {
  SubscriberList list;
  list.Set(5, 6);
  EXPECT_FALSE(list.Set(5, 7));
  EXPECT_EQ(list.size(), 1u);
  EXPECT_EQ(list.Get(5), std::optional<NodeId>(7));
}

TEST(SubscriberListTest, SelfBranch) {
  SubscriberList list;
  list.Set(kSelfBranch, 3);
  EXPECT_TRUE(list.HasSelf());
  EXPECT_EQ(list.Get(kSelfBranch), std::optional<NodeId>(3));
}

TEST(SubscriberListTest, RemoveBranch) {
  SubscriberList list;
  list.Set(5, 6);
  EXPECT_TRUE(list.Remove(5));
  EXPECT_TRUE(list.empty());
  EXPECT_FALSE(list.Remove(5));  // Idempotent.
}

TEST(SubscriberListTest, GetMissingBranch) {
  SubscriberList list;
  EXPECT_FALSE(list.Get(9).has_value());
  EXPECT_FALSE(list.HasBranch(9));
}

TEST(SubscriberListTest, SoleEntry) {
  SubscriberList list;
  list.Set(5, 6);
  const auto [branch, subscriber] = list.Sole();
  EXPECT_EQ(branch, 5u);
  EXPECT_EQ(subscriber, 6u);
}

TEST(SubscriberListTest, EntriesKeepInsertionOrder) {
  SubscriberList list;
  list.Set(3, 30);
  list.Set(1, 10);
  list.Set(2, 20);
  const auto& entries = list.entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].first, 3u);
  EXPECT_EQ(entries[1].first, 1u);
  EXPECT_EQ(entries[2].first, 2u);
}

TEST(SubscriberListTest, ContainsSubscriber) {
  SubscriberList list;
  list.Set(5, 6);
  list.Set(4, 4);
  EXPECT_TRUE(list.ContainsSubscriber(6));
  EXPECT_TRUE(list.ContainsSubscriber(4));
  EXPECT_FALSE(list.ContainsSubscriber(5));
}

TEST(SubscriberListTest, MultipleBranchesIndependent) {
  SubscriberList list;
  list.Set(1, 10);
  list.Set(2, 20);
  list.Set(kSelfBranch, 7);
  EXPECT_EQ(list.size(), 3u);
  list.Remove(1);
  EXPECT_FALSE(list.HasBranch(1));
  EXPECT_TRUE(list.HasBranch(2));
  EXPECT_TRUE(list.HasSelf());
}

TEST(SubscriberListTest, RemoveMiddlePreservesOthers) {
  SubscriberList list;
  list.Set(1, 10);
  list.Set(2, 20);
  list.Set(3, 30);
  list.Remove(2);
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list.Get(1), std::optional<NodeId>(10));
  EXPECT_EQ(list.Get(3), std::optional<NodeId>(30));
}

}  // namespace
}  // namespace dupnet::core
