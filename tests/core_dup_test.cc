#include "core/dup_protocol.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace dupnet::core {
namespace {

using ::dupnet::testing::MakePaperTree;
using ::dupnet::testing::ProtocolHarness;
using proto::ProtocolOptions;

class DupTest : public ::testing::Test {
 protected:
  DupTest() : harness_(MakePaperTree()) {}

  void MakeProtocol(ProtocolOptions options = ProtocolOptions(),
                    DupOptions dup_options = DupOptions()) {
    protocol_ = std::make_unique<DupProtocol>(
        &harness_.network(), &harness_.tree(), options, dup_options);
    harness_.Attach(protocol_.get());
  }

  uint64_t PushHops() { return harness_.recorder().hops().push(); }
  uint64_t ControlHops() { return harness_.recorder().hops().control(); }

  void ExpectEntry(NodeId node, NodeId branch, NodeId subscriber) {
    const auto entry = protocol_->SubscriberListOf(node).Get(branch);
    ASSERT_TRUE(entry.has_value())
        << "node " << node << " has no entry for branch " << branch;
    EXPECT_EQ(*entry, subscriber)
        << "node " << node << " branch " << branch;
  }

  ProtocolHarness harness_;
  std::unique_ptr<DupProtocol> protocol_;
};

TEST_F(DupTest, Name) {
  MakeProtocol();
  EXPECT_EQ(protocol_->name(), "dup");
}

TEST_F(DupTest, SubscribeBuildsVirtualPath) {
  MakeProtocol();
  harness_.Publish(1);
  protocol_->ForceSubscribe(6);
  harness_.Drain();
  // Figure 2 (a): virtual path N6..N1; only N1 and N6 in the DUP tree.
  ExpectEntry(6, kSelfBranch, 6);
  ExpectEntry(5, 6, 6);
  ExpectEntry(3, 5, 6);
  ExpectEntry(2, 3, 6);
  ExpectEntry(1, 2, 6);
  EXPECT_TRUE(protocol_->OnVirtualPath(5));
  EXPECT_FALSE(protocol_->InDupTree(5));
  EXPECT_FALSE(protocol_->InDupTree(3));
  EXPECT_TRUE(protocol_->InDupTree(6));
  EXPECT_TRUE(protocol_->InDupTree(1));
  EXPECT_TRUE(harness_.Audit().ok());
}

TEST_F(DupTest, DirectPushCostsOneHop) {
  MakeProtocol();
  harness_.Publish(1);
  protocol_->ForceSubscribe(6);
  harness_.Drain();
  const uint64_t before = PushHops();
  harness_.Publish(2);
  // Paper Section III-A: "It only costs one hop to push the update"
  // (versus eight hops for a PCX round trip to N1).
  EXPECT_EQ(PushHops() - before, 1u);
  EXPECT_EQ(protocol_->CacheOf(6).stored_version(), 2u);
  // The virtual-path nodes did NOT receive the index.
  EXPECT_NE(protocol_->CacheOf(5).stored_version(), 2u);
  EXPECT_NE(protocol_->CacheOf(3).stored_version(), 2u);
}

TEST_F(DupTest, SecondSubscriberCreatesBranchPoint) {
  MakeProtocol();
  harness_.Publish(1);
  protocol_->ForceSubscribe(6);
  harness_.Drain();
  protocol_->ForceSubscribe(4);
  harness_.Drain();
  // Figure 2 (b): N3 replaces N6 upstream and pushes to N4 and N6.
  ExpectEntry(3, 4, 4);
  ExpectEntry(3, 5, 6);
  ExpectEntry(2, 3, 3);
  ExpectEntry(1, 2, 3);
  EXPECT_TRUE(protocol_->InDupTree(3));
  EXPECT_TRUE(harness_.Audit().ok());
}

TEST_F(DupTest, PaperFigure2PushCostIsThree) {
  MakeProtocol();
  harness_.Publish(1);
  protocol_->ForceSubscribe(6);
  protocol_->ForceSubscribe(4);
  harness_.Drain();
  const uint64_t before = PushHops();
  harness_.Publish(2);
  // Paper: "this scheme only costs three hops" to serve N4 and N6
  // (N1 -> N3, N3 -> N4, N3 -> N6).
  EXPECT_EQ(PushHops() - before, 3u);
  EXPECT_EQ(protocol_->CacheOf(4).stored_version(), 2u);
  EXPECT_EQ(protocol_->CacheOf(6).stored_version(), 2u);
  EXPECT_EQ(protocol_->CacheOf(3).stored_version(), 2u);  // Branch point.
  EXPECT_NE(protocol_->CacheOf(2).stored_version(), 2u);  // Skipped.
  EXPECT_NE(protocol_->CacheOf(5).stored_version(), 2u);  // Skipped.
}

TEST_F(DupTest, MidPathNodeJoinsTreeAndReplacesDownstream) {
  MakeProtocol();
  harness_.Publish(1);
  protocol_->ForceSubscribe(6);
  harness_.Drain();
  protocol_->ForceSubscribe(5);
  harness_.Drain();
  // Paper: "for N5, after it joins the tree, it replaces N6 as a subscriber
  // of N3 and N5 lists N6 as its subscriber."
  ExpectEntry(3, 5, 5);
  ExpectEntry(5, 6, 6);
  ExpectEntry(5, kSelfBranch, 5);
  ExpectEntry(1, 2, 5);
  EXPECT_TRUE(harness_.Audit().ok());

  const uint64_t before = PushHops();
  harness_.Publish(2);
  // N1 -> N5 (direct), N5 -> N6.
  EXPECT_EQ(PushHops() - before, 2u);
  EXPECT_EQ(protocol_->CacheOf(5).stored_version(), 2u);
  EXPECT_EQ(protocol_->CacheOf(6).stored_version(), 2u);
}

TEST_F(DupTest, DeepDescendantHandledByNearestTreeNode) {
  MakeProtocol();
  harness_.Publish(1);
  protocol_->ForceSubscribe(6);
  harness_.Drain();
  const uint64_t control_before = ControlHops();
  protocol_->ForceSubscribe(7);
  harness_.Drain();
  // Paper: "For N7 or N8, N6 takes care of them" — the subscribe stops at
  // N6 (one hop) and the no-op substitute is suppressed.
  EXPECT_EQ(ControlHops() - control_before, 1u);
  ExpectEntry(6, 7, 7);
  ExpectEntry(1, 2, 6);  // Root still points at N6.
  EXPECT_TRUE(harness_.Audit().ok());

  const uint64_t before = PushHops();
  harness_.Publish(2);
  EXPECT_EQ(PushHops() - before, 2u);  // N1 -> N6, N6 -> N7.
  EXPECT_EQ(protocol_->CacheOf(7).stored_version(), 2u);
}

TEST_F(DupTest, UnsubscribeEndNodeClearsVirtualPath) {
  MakeProtocol();
  harness_.Publish(1);
  protocol_->ForceSubscribe(6);
  protocol_->ForceSubscribe(4);
  harness_.Drain();
  protocol_->ForceUnsubscribe(6);
  harness_.Drain();
  // Figure 2 (c): N3 drops out and the root pushes directly to N4.
  EXPECT_FALSE(protocol_->OnVirtualPath(6));
  EXPECT_FALSE(protocol_->OnVirtualPath(5));
  ExpectEntry(1, 2, 4);
  ExpectEntry(2, 3, 4);
  ExpectEntry(3, 4, 4);
  EXPECT_FALSE(protocol_->InDupTree(3));
  EXPECT_TRUE(harness_.Audit().ok());

  const uint64_t before = PushHops();
  harness_.Publish(2);
  EXPECT_EQ(PushHops() - before, 1u);  // N1 -> N4 direct.
  EXPECT_EQ(protocol_->CacheOf(4).stored_version(), 2u);
  EXPECT_NE(protocol_->CacheOf(6).stored_version(), 2u);
}

TEST_F(DupTest, LastUnsubscribeEmptiesEverything) {
  MakeProtocol();
  harness_.Publish(1);
  protocol_->ForceSubscribe(6);
  harness_.Drain();
  protocol_->ForceUnsubscribe(6);
  harness_.Drain();
  for (NodeId n = 1; n <= 8; ++n) {
    EXPECT_FALSE(protocol_->OnVirtualPath(n)) << "node " << n;
  }
  const uint64_t before = PushHops();
  harness_.Publish(2);
  EXPECT_EQ(PushHops() - before, 0u);
  EXPECT_TRUE(harness_.Audit().ok());
}

TEST_F(DupTest, InterestViaQueriesSubscribes) {
  ProtocolOptions options;
  options.threshold_c = 3;
  MakeProtocol(options);
  harness_.Publish(1);
  harness_.QueryAt(6, 3);
  EXPECT_FALSE(protocol_->OnVirtualPath(6));  // Exactly c: not yet.
  harness_.QueryAt(6, 1);
  EXPECT_TRUE(protocol_->OnVirtualPath(6));  // c+1: subscribed.
  ExpectEntry(1, 2, 6);
  EXPECT_TRUE(harness_.Audit().ok());
}

TEST_F(DupTest, InterestDecayUnsubscribesOnPush) {
  ProtocolOptions options;
  options.threshold_c = 2;
  options.ttl = 100.0;
  MakeProtocol(options);
  protocol_->OnRootPublish(1, 100.0);
  harness_.QueryAt(6, 3);
  EXPECT_TRUE(protocol_->OnVirtualPath(6));
  harness_.AdvanceTime(150.0);  // Interest window empties.
  protocol_->OnRootPublish(2, harness_.engine().Now() + 100.0);
  harness_.Drain();  // Push arrives, node notices it lost interest.
  EXPECT_FALSE(protocol_->OnVirtualPath(6));
  EXPECT_TRUE(harness_.Audit().ok());
}

TEST_F(DupTest, PushDeduplicationStopsCycles) {
  MakeProtocol();
  harness_.Publish(1);
  protocol_->ForceSubscribe(6);
  harness_.Drain();
  harness_.Publish(2);
  const uint64_t before = PushHops();
  // Replay the same version.
  net::Message push;
  push.type = net::MessageType::kPush;
  push.from = 1;
  push.to = 6;
  push.version = 2;
  push.expiry = harness_.engine().Now() + 3600.0;
  harness_.network().Send(std::move(push));
  harness_.Drain();
  EXPECT_EQ(PushHops() - before, 1u);  // Only the replayed hop.
}

TEST_F(DupTest, DeliveryCallbackFires) {
  MakeProtocol();
  harness_.Publish(1);
  std::vector<std::pair<NodeId, IndexVersion>> deliveries;
  protocol_->set_delivery_callback(
      [&](NodeId node, IndexVersion version) {
        deliveries.push_back({node, version});
      });
  protocol_->ForceSubscribe(6);
  protocol_->ForceSubscribe(4);
  harness_.Drain();
  harness_.Publish(2);
  ASSERT_EQ(deliveries.size(), 3u);  // N3 (branch point), N4, N6.
  for (const auto& [node, version] : deliveries) {
    EXPECT_EQ(version, 2u);
  }
}

TEST_F(DupTest, NoShortcutAblationChargesTreeDistance) {
  DupOptions dup_options;
  dup_options.shortcut_push = false;
  MakeProtocol(ProtocolOptions(), dup_options);
  harness_.Publish(1);
  protocol_->ForceSubscribe(6);
  harness_.Drain();
  const uint64_t before = PushHops();
  harness_.Publish(2);
  // Root -> N6 along the tree: 4 hops instead of the 1-hop shortcut.
  EXPECT_EQ(PushHops() - before, 4u);
}

TEST_F(DupTest, PiggybackSubscribeIsFree) {
  ProtocolOptions options;
  DupOptions dup_options;
  dup_options.piggyback_subscribe = true;
  MakeProtocol(options, dup_options);
  harness_.Publish(1);
  const uint64_t before = ControlHops();
  protocol_->ForceSubscribe(6);
  harness_.Drain();
  EXPECT_EQ(ControlHops(), before);  // Subscribe rode the interest bit.
  ExpectEntry(1, 2, 6);              // But state still propagated.
}

TEST_F(DupTest, ForceSubscribeIdempotent) {
  MakeProtocol();
  harness_.Publish(1);
  protocol_->ForceSubscribe(6);
  harness_.Drain();
  const uint64_t control = ControlHops();
  protocol_->ForceSubscribe(6);
  harness_.Drain();
  EXPECT_EQ(ControlHops(), control);
  EXPECT_TRUE(harness_.Audit().ok());
}

TEST_F(DupTest, RootNeverSubscribes) {
  MakeProtocol();
  harness_.Publish(1);
  protocol_->ForceSubscribe(1);
  harness_.Drain();
  EXPECT_FALSE(protocol_->SubscriberListOf(1).HasSelf());
}

TEST_F(DupTest, SubscriberListBoundedByChildren) {
  MakeProtocol();
  harness_.Publish(1);
  for (NodeId n = 2; n <= 8; ++n) protocol_->ForceSubscribe(n);
  harness_.Drain();
  EXPECT_TRUE(harness_.Audit().ok());
  for (NodeId n = 1; n <= 8; ++n) {
    EXPECT_LE(protocol_->SubscriberListOf(n).size(),
              harness_.tree().Children(n).size() + 1)
        << "node " << n;
  }
  // Everyone subscribed: a push reaches all 7 non-root nodes.
  const uint64_t before = PushHops();
  harness_.Publish(2);
  EXPECT_EQ(PushHops() - before, 7u);
  for (NodeId n = 2; n <= 8; ++n) {
    EXPECT_EQ(protocol_->CacheOf(n).stored_version(), 2u) << "node " << n;
  }
}

TEST_F(DupTest, TreeStatsMatchFigure2Taxonomy) {
  MakeProtocol();
  harness_.Publish(1);
  protocol_->ForceSubscribe(6);
  protocol_->ForceSubscribe(4);
  harness_.Drain();
  const auto stats = protocol_->ComputeTreeStats();
  EXPECT_EQ(stats.interested, 2u);      // N4, N6.
  EXPECT_EQ(stats.virtual_path, 6u);    // N1..N6 all hold entries.
  EXPECT_EQ(stats.branch_points, 1u);   // N3.
  EXPECT_EQ(stats.dup_tree, 4u);        // N1, N3, N4, N6.
  EXPECT_EQ(protocol_->MaxSubscriberListSize(), 2u);
}

TEST_F(DupTest, TreeStatsEmptyWithoutSubscribers) {
  MakeProtocol();
  harness_.Publish(1);
  const auto stats = protocol_->ComputeTreeStats();
  EXPECT_EQ(stats.interested, 0u);
  EXPECT_EQ(stats.dup_tree, 0u);
}

TEST_F(DupTest, QueriesStillServedWhileSubscribed) {
  MakeProtocol();
  harness_.Publish(1);
  protocol_->ForceSubscribe(6);
  harness_.Drain();
  harness_.Publish(2);
  harness_.QueryAt(6);
  EXPECT_DOUBLE_EQ(harness_.recorder().AverageLatencyHops(), 0.0);
  harness_.QueryAt(8);  // Unsubscribed sibling subtree still queries up.
  EXPECT_GT(harness_.recorder().AverageLatencyHops(), 0.0);
}

}  // namespace
}  // namespace dupnet::core
