// Deeper edge cases pinned down during development: representative-change
// propagation, driver option plumbing, horizon draining, and cross-module
// invariants that only show up in combination.

#include <cmath>

#include <gtest/gtest.h>

#include "chord/ring.h"
#include "chord/sha1.h"
#include "core/dup_protocol.h"
#include "experiment/config.h"
#include "experiment/driver.h"
#include "test_util.h"

namespace dupnet {
namespace {

using ::dupnet::testing::MakePaperTree;
using ::dupnet::testing::ProtocolHarness;

// --- DUP representative-change propagation ---------------------------------

class DupEdgeTest : public ::testing::Test {
 protected:
  DupEdgeTest() : harness_(MakePaperTree()) {
    protocol_ = std::make_unique<core::DupProtocol>(
        &harness_.network(), &harness_.tree(), proto::ProtocolOptions());
    harness_.Attach(protocol_.get());
    protocol_->OnRootPublish(1, 3600.0);
    harness_.Drain();
  }

  ProtocolHarness harness_;
  std::unique_ptr<core::DupProtocol> protocol_;
};

TEST_F(DupEdgeTest, NearerSubscriberTakesOverBranchRepresentation) {
  // N7 subscribes first: the whole path represents N7.
  protocol_->ForceSubscribe(7);
  harness_.Drain();
  EXPECT_EQ(protocol_->SubscriberListOf(1).Get(2), std::optional<NodeId>(7));
  // Then N6 (nearer to the root on the same branch) subscribes: it becomes
  // a branch point below, and upstream must re-point to N6.
  protocol_->ForceSubscribe(6);
  harness_.Drain();
  EXPECT_EQ(protocol_->SubscriberListOf(1).Get(2), std::optional<NodeId>(6));
  EXPECT_EQ(protocol_->SubscriberListOf(6).Get(7), std::optional<NodeId>(7));
  EXPECT_TRUE(harness_.Audit().ok());
  // Both get the next version.
  protocol_->OnRootPublish(2, 7200.0);
  harness_.Drain();
  EXPECT_EQ(protocol_->CacheOf(6).stored_version(), 2u);
  EXPECT_EQ(protocol_->CacheOf(7).stored_version(), 2u);
}

TEST_F(DupEdgeTest, SiblingLeavesDeepBranchIntact) {
  protocol_->ForceSubscribe(7);
  protocol_->ForceSubscribe(8);
  harness_.Drain();
  ASSERT_TRUE(protocol_->InDupTree(6));  // Branch point for 7 and 8.
  protocol_->ForceUnsubscribe(8);
  harness_.Drain();
  // N6 collapses out of the tree; upstream points straight to N7.
  EXPECT_FALSE(protocol_->InDupTree(6));
  EXPECT_EQ(protocol_->SubscriberListOf(1).Get(2), std::optional<NodeId>(7));
  EXPECT_TRUE(harness_.Audit().ok());
}

TEST_F(DupEdgeTest, ThreeGenerationsOfBranchPoints) {
  for (NodeId n : {4u, 7u, 8u, 5u}) protocol_->ForceSubscribe(n);
  harness_.Drain();
  EXPECT_TRUE(harness_.Audit().ok());
  // N3 (4 vs 5-side), N5 (self + 6-side), N6 (7 vs 8) are branch points.
  EXPECT_TRUE(protocol_->InDupTree(3));
  EXPECT_TRUE(protocol_->InDupTree(5));
  EXPECT_TRUE(protocol_->InDupTree(6));
  protocol_->OnRootPublish(2, 7200.0);
  harness_.Drain();
  for (NodeId n : {4u, 5u, 7u, 8u}) {
    EXPECT_EQ(protocol_->CacheOf(n).stored_version(), 2u) << "node " << n;
  }
  // Push hops: 1->3, 3->4, 3->5, 5->6, 6->7, 6->8 = 6 direct edges.
  // (N5 is both interested and a relay to N6's branch point.)
}

TEST_F(DupEdgeTest, UnsubscribeWhileSubscribeInFlight) {
  // Issue subscribe and unsubscribe back-to-back without draining: FIFO
  // links must make the final state "unsubscribed".
  protocol_->ForceSubscribe(6);
  protocol_->ForceUnsubscribe(6);
  harness_.Drain();
  EXPECT_FALSE(protocol_->OnVirtualPath(6));
  EXPECT_TRUE(harness_.Audit().ok());
  // And the reverse order ends subscribed.
  protocol_->ForceUnsubscribe(6);
  protocol_->ForceSubscribe(6);
  harness_.Drain();
  EXPECT_TRUE(protocol_->SubscriberListOf(6).HasSelf());
  EXPECT_TRUE(harness_.Audit().ok());
}

// --- Driver option plumbing -------------------------------------------------

TEST(DriverPlumbingTest, CupPolicyReachesProtocol) {
  experiment::ExperimentConfig config;
  config.scheme = experiment::Scheme::kCup;
  config.num_nodes = 64;
  config.ttl = 600.0;
  config.push_lead = 30.0;
  config.warmup_time = 600.0;
  config.measure_time = 1200.0;
  config.cup.policy = proto::CupPushPolicy::kPopularityThreshold;
  config.cup.popularity_threshold = 1000000;  // Never push.
  auto metrics = experiment::SimulationDriver::Run(config);
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->hops.push(), 0u);  // Policy made CUP push-free.
}

TEST(DriverPlumbingTest, PiggybackSubscribeRemovesControlCost) {
  experiment::ExperimentConfig config;
  config.scheme = experiment::Scheme::kDup;
  config.num_nodes = 256;
  config.lambda = 5.0;
  config.ttl = 600.0;
  config.push_lead = 30.0;
  config.warmup_time = 600.0;
  config.measure_time = 1200.0;
  auto explicit_subs = experiment::SimulationDriver::Run(config);
  config.dup.piggyback_subscribe = true;
  auto piggyback = experiment::SimulationDriver::Run(config);
  ASSERT_TRUE(explicit_subs.ok());
  ASSERT_TRUE(piggyback.ok());
  EXPECT_LT(piggyback->hops.control(), explicit_subs->hops.control());
}

TEST(DriverPlumbingTest, QueueDrainsAfterHorizon) {
  experiment::ExperimentConfig config;
  config.num_nodes = 64;
  config.lambda = 5.0;
  config.ttl = 600.0;
  config.push_lead = 30.0;
  config.warmup_time = 300.0;
  config.measure_time = 900.0;
  experiment::SimulationDriver driver(config);
  ASSERT_TRUE(driver.Init().ok());
  driver.RunToCompletion();
  driver.engine().Run();  // Must terminate: generators stop at the horizon.
  EXPECT_EQ(driver.engine().pending(), 0u);
}

TEST(DriverPlumbingTest, HopLatencyAffectsTimingNotHops) {
  experiment::ExperimentConfig slow;
  slow.num_nodes = 64;
  slow.ttl = 600.0;
  slow.push_lead = 30.0;
  slow.warmup_time = 300.0;
  slow.measure_time = 900.0;
  experiment::ExperimentConfig fast = slow;
  fast.hop_latency_mean = 0.001;
  auto slow_result = experiment::SimulationDriver::Run(slow);
  auto fast_result = experiment::SimulationDriver::Run(fast);
  ASSERT_TRUE(slow_result.ok());
  ASSERT_TRUE(fast_result.ok());
  // Hop-based metrics are latency-scale-free (same seed, same decisions
  // except for in-flight races near version boundaries).
  EXPECT_NEAR(fast_result->avg_cost_hops, slow_result->avg_cost_hops,
              0.15 * slow_result->avg_cost_hops + 0.05);
}

// --- Chord routing property --------------------------------------------------

TEST(ChordPropertyTest, NextHopStrictlyApproachesAuthority) {
  auto ring = chord::ChordRing::Create(512);
  ASSERT_TRUE(ring.ok());
  const chord::ChordId key = chord::Sha1Hash64("progress");
  const NodeId authority = ring->SuccessorOfKey(key);
  auto clockwise_gap = [&](NodeId n) {
    // Distance from node (exclusive) clockwise to the key.
    return key - ring->IdOf(n) - 1;  // mod 2^64 arithmetic.
  };
  for (NodeId n = 0; n < 512; ++n) {
    if (n == authority) continue;
    const NodeId next = ring->NextHop(n, key);
    if (next == authority) continue;
    EXPECT_LT(clockwise_gap(next), clockwise_gap(n)) << "from node " << n;
  }
}

// --- Statistical cross-checks -------------------------------------------------

TEST(MetricsCrossCheckTest, CostAtLeastTwiceNonLocalLatencyForPcx) {
  // In PCX every non-local query pays its request hops again on the reply,
  // and there is no other traffic: cost == 2 * latency exactly.
  experiment::ExperimentConfig config;
  config.scheme = experiment::Scheme::kPcx;
  config.num_nodes = 256;
  config.lambda = 2.0;
  config.ttl = 600.0;
  config.push_lead = 30.0;
  config.warmup_time = 600.0;
  config.measure_time = 1200.0;
  auto metrics = experiment::SimulationDriver::Run(config);
  ASSERT_TRUE(metrics.ok());
  EXPECT_NEAR(metrics->avg_cost_hops, 2.0 * metrics->avg_latency_hops,
              0.02 * metrics->avg_cost_hops + 1e-9);
}

TEST(MetricsCrossCheckTest, LatencyPercentilesOrdered) {
  experiment::ExperimentConfig config;
  config.num_nodes = 256;
  config.lambda = 1.0;
  config.ttl = 600.0;
  config.push_lead = 30.0;
  config.warmup_time = 600.0;
  config.measure_time = 1800.0;
  auto metrics = experiment::SimulationDriver::Run(config);
  ASSERT_TRUE(metrics.ok());
  EXPECT_LE(metrics->latency_p50, metrics->latency_p95);
  EXPECT_LE(metrics->latency_p95, metrics->latency_p99);
  EXPECT_LE(metrics->latency_p99, metrics->latency_max);
  EXPECT_GE(static_cast<double>(metrics->latency_max),
            metrics->avg_latency_hops);
}

}  // namespace
}  // namespace dupnet
