#include "topo/dot_export.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace dupnet::topo {
namespace {

using ::dupnet::testing::MakePaperTree;

TEST(DotExportTest, ContainsEveryEdge) {
  const IndexSearchTree tree = MakePaperTree();
  const std::string dot = TreeToDot(tree);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("n1 -> n2;"), std::string::npos);
  EXPECT_NE(dot.find("n5 -> n6;"), std::string::npos);
  EXPECT_NE(dot.find("n6 -> n8;"), std::string::npos);
  // 7 edges for 8 nodes.
  size_t edges = 0;
  for (size_t pos = dot.find(" -> "); pos != std::string::npos;
       pos = dot.find(" -> ", pos + 1)) {
    ++edges;
  }
  EXPECT_EQ(edges, 7u);
}

TEST(DotExportTest, AppliesStyles) {
  const IndexSearchTree tree = MakePaperTree();
  const std::string dot = TreeToDot(tree, [](NodeId node) {
    DotNodeStyle style;
    if (node == 6) {
      style.fillcolor = "lightblue";
      style.emphasize = true;
      style.label = "N6*";
    }
    return style;
  });
  EXPECT_NE(dot.find("fillcolor=\"lightblue\""), std::string::npos);
  EXPECT_NE(dot.find("penwidth=2.5"), std::string::npos);
  EXPECT_NE(dot.find("label=\"N6*\""), std::string::npos);
}

TEST(DotExportTest, SingleNodeTree) {
  const IndexSearchTree tree(42);
  const std::string dot = TreeToDot(tree);
  EXPECT_NE(dot.find("n42;"), std::string::npos);
  EXPECT_EQ(dot.find(" -> "), std::string::npos);
}

}  // namespace
}  // namespace dupnet::topo
