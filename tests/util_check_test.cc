#include "util/check.h"

#include <gtest/gtest.h>

#include "util/status.h"

namespace dupnet::util {
namespace {

TEST(CheckTest, PassingChecksAreSilent) {
  DUP_CHECK(true);
  DUP_CHECK_EQ(1, 1);
  DUP_CHECK_NE(1, 2);
  DUP_CHECK_LT(1, 2);
  DUP_CHECK_LE(2, 2);
  DUP_CHECK_GT(3, 2);
  DUP_CHECK_GE(3, 3);
  DUP_CHECK_OK(Status::OK());
  SUCCEED();
}

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH(DUP_CHECK(false) << "context " << 42,
               "DUP_CHECK failed.*false.*context 42");
}

TEST(CheckDeathTest, EqPrintsBothValues) {
  const int a = 3, b = 7;
  EXPECT_DEATH(DUP_CHECK_EQ(a, b), "3 vs 7");
}

TEST(CheckDeathTest, CheckOkPrintsStatus) {
  EXPECT_DEATH(DUP_CHECK_OK(Status::NotFound("missing thing")),
               "NotFound: missing thing");
}

TEST(CheckDeathTest, ComparisonMacros) {
  const int x = 5;
  EXPECT_DEATH(DUP_CHECK_LT(x, 5), "5 vs 5");
  EXPECT_DEATH(DUP_CHECK_GT(x, 5), "5 vs 5");
}

}  // namespace
}  // namespace dupnet::util
