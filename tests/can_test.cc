#include "can/space.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace dupnet::can {
namespace {

TEST(ZoneTest, ContainsHalfOpen) {
  Zone zone;
  zone.dims = 2;
  zone.lo = {0.25, 0.5};
  zone.hi = {0.5, 1.0};
  Point inside = Point::Zero(2);
  inside.coords = {0.3, 0.7};
  EXPECT_TRUE(zone.Contains(inside));
  Point on_lo = Point::Zero(2);
  on_lo.coords = {0.25, 0.5};
  EXPECT_TRUE(zone.Contains(on_lo));
  Point on_hi = Point::Zero(2);
  on_hi.coords = {0.5, 0.7};
  EXPECT_FALSE(zone.Contains(on_hi));
}

TEST(ZoneTest, VolumeIsProduct) {
  Zone zone;
  zone.dims = 3;
  zone.lo = {0.0, 0.0, 0.0};
  zone.hi = {0.5, 0.25, 1.0};
  EXPECT_DOUBLE_EQ(zone.Volume(), 0.125);
}

TEST(ZoneTest, DistanceZeroInside) {
  Zone zone;
  zone.dims = 2;
  zone.lo = {0.0, 0.0};
  zone.hi = {0.5, 0.5};
  Point p = Point::Zero(2);
  p.coords = {0.1, 0.1};
  EXPECT_DOUBLE_EQ(zone.DistanceSquared(p), 0.0);
}

TEST(ZoneTest, DistanceWrapsTorus) {
  Zone zone;
  zone.dims = 1;
  zone.lo = {0.0};
  zone.hi = {0.1};
  Point p = Point::Zero(1);
  p.coords = {0.95};  // 0.05 away across the wrap, 0.85 directly.
  EXPECT_NEAR(zone.DistanceSquared(p), 0.05 * 0.05, 1e-12);
}

TEST(ZoneTest, NeighborsShareBorder) {
  Zone a, b, c;
  a.dims = b.dims = c.dims = 2;
  a.lo = {0.0, 0.0};
  a.hi = {0.5, 0.5};
  b.lo = {0.5, 0.0};
  b.hi = {1.0, 0.5};
  c.lo = {0.5, 0.5};
  c.hi = {1.0, 1.0};
  EXPECT_TRUE(a.IsNeighbor(b));   // Shared vertical border.
  EXPECT_TRUE(b.IsNeighbor(c));   // Shared horizontal border.
  EXPECT_FALSE(a.IsNeighbor(c));  // Corner contact only.
  // Torus wrap: [0.5, 1.0) abuts [0.0, 0.5) across the 1 -> 0 seam.
  EXPECT_TRUE(b.IsNeighbor(a));
}

TEST(CanSpaceTest, SingleNodeOwnsEverything) {
  auto space = CanSpace::Create(1, 2, 1);
  ASSERT_TRUE(space.ok());
  EXPECT_DOUBLE_EQ(space->ZoneOf(0).Volume(), 1.0);
  Point p = Point::Zero(2);
  p.coords = {0.9, 0.1};
  EXPECT_EQ(space->OwnerOf(p), 0u);
}

TEST(CanSpaceTest, RejectsBadParameters) {
  EXPECT_FALSE(CanSpace::Create(0, 2, 1).ok());
  EXPECT_FALSE(CanSpace::Create(8, 0, 1).ok());
  EXPECT_FALSE(CanSpace::Create(8, 9, 1).ok());
}

TEST(CanSpaceTest, ZonesTileTheTorus) {
  auto space = CanSpace::Create(64, 2, 7);
  ASSERT_TRUE(space.ok());
  double total = 0.0;
  for (size_t i = 0; i < space->size(); ++i) {
    total += space->ZoneOf(static_cast<NodeId>(i)).Volume();
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  // Every random point has exactly one owner (OwnerOf checks containment).
  util::Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    Point p = Point::Zero(2);
    p.coords = {rng.NextDouble(), rng.NextDouble()};
    int owners = 0;
    for (size_t z = 0; z < space->size(); ++z) {
      if (space->ZoneOf(static_cast<NodeId>(z)).Contains(p)) ++owners;
    }
    EXPECT_EQ(owners, 1);
  }
}

TEST(CanSpaceTest, NeighborListsAreSymmetric) {
  auto space = CanSpace::Create(48, 2, 9);
  ASSERT_TRUE(space.ok());
  for (size_t a = 0; a < space->size(); ++a) {
    for (NodeId b : space->NeighborsOf(static_cast<NodeId>(a))) {
      const auto& back = space->NeighborsOf(b);
      EXPECT_NE(std::find(back.begin(), back.end(), static_cast<NodeId>(a)),
                back.end());
    }
  }
}

TEST(CanSpaceTest, EveryZoneHasNeighbors) {
  auto space = CanSpace::Create(32, 2, 11);
  ASSERT_TRUE(space.ok());
  for (size_t i = 0; i < space->size(); ++i) {
    EXPECT_FALSE(space->NeighborsOf(static_cast<NodeId>(i)).empty())
        << "zone " << i << " isolated";
  }
}

TEST(CanSpaceTest, RoutingConvergesFromEveryNode) {
  auto space = CanSpace::Create(128, 2, 13);
  ASSERT_TRUE(space.ok());
  const Point key = CanSpace::PointForKey("some-file", 2);
  const NodeId authority = space->OwnerOf(key);
  for (size_t n = 0; n < space->size(); ++n) {
    auto path = space->RoutePath(static_cast<NodeId>(n), key);
    ASSERT_TRUE(path.ok()) << "from " << n << ": "
                           << path.status().ToString();
    EXPECT_EQ(path->back(), authority);
  }
}

TEST(CanSpaceTest, RouteLengthScalesAsDimensionalRoot) {
  // CAN routes are O(d * n^(1/d)); for d=2 and n=256 that's ~2*16 = 32.
  auto space = CanSpace::Create(256, 2, 17);
  ASSERT_TRUE(space.ok());
  const Point key = CanSpace::PointForKey("k", 2);
  double total = 0;
  for (size_t n = 0; n < space->size(); ++n) {
    auto path = space->RoutePath(static_cast<NodeId>(n), key);
    ASSERT_TRUE(path.ok());
    total += static_cast<double>(path->size() - 1);
    EXPECT_LE(path->size() - 1, 80u);
  }
  EXPECT_LT(total / 256.0, 25.0);
}

TEST(CanSpaceTest, HigherDimsShortenRoutes) {
  const Point key2 = CanSpace::PointForKey("k", 2);
  const Point key4 = CanSpace::PointForKey("k", 4);
  auto space2 = CanSpace::Create(512, 2, 19);
  auto space4 = CanSpace::Create(512, 4, 19);
  ASSERT_TRUE(space2.ok());
  ASSERT_TRUE(space4.ok());
  auto average = [](const CanSpace& space, const Point& key) {
    double total = 0;
    for (size_t n = 0; n < space.size(); ++n) {
      auto path = space.RoutePath(static_cast<NodeId>(n), key);
      EXPECT_TRUE(path.ok());
      total += static_cast<double>(path->size() - 1);
    }
    return total / static_cast<double>(space.size());
  };
  EXPECT_LT(average(*space4, key4), average(*space2, key2));
}

TEST(CanSpaceTest, PointForKeyDeterministicAndSpread) {
  const Point a = CanSpace::PointForKey("alpha", 2);
  const Point b = CanSpace::PointForKey("alpha", 2);
  const Point c = CanSpace::PointForKey("beta", 2);
  EXPECT_DOUBLE_EQ(a.coords[0], b.coords[0]);
  EXPECT_DOUBLE_EQ(a.coords[1], b.coords[1]);
  EXPECT_NE(a.coords[0], c.coords[0]);
  for (int d = 0; d < 2; ++d) {
    EXPECT_GE(a.coords[d], 0.0);
    EXPECT_LT(a.coords[d], 1.0);
  }
}

TEST(CanSpaceTest, BuildsSpanningIndexTree) {
  auto space = CanSpace::Create(100, 2, 23);
  ASSERT_TRUE(space.ok());
  auto tree = space->BuildIndexTreeForKeyName("the-index");
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->size(), 100u);
  EXPECT_TRUE(tree->Validate().ok());
  const Point key = CanSpace::PointForKey("the-index", 2);
  EXPECT_EQ(tree->root(), space->OwnerOf(key));
}

TEST(CanSpaceTest, TreeParentIsNextHop) {
  auto space = CanSpace::Create(64, 2, 29);
  ASSERT_TRUE(space.ok());
  const Point key = CanSpace::PointForKey("x", 2);
  auto tree = space->BuildIndexTree(key);
  ASSERT_TRUE(tree.ok());
  for (size_t n = 0; n < space->size(); ++n) {
    const NodeId node = static_cast<NodeId>(n);
    if (node == tree->root()) continue;
    EXPECT_EQ(tree->Parent(node), space->NextHop(node, key));
  }
}

class CanDimsSweep : public ::testing::TestWithParam<int> {};

TEST_P(CanDimsSweep, SpansAndRoutesAtEveryDimensionality) {
  auto space = CanSpace::Create(96, GetParam(), 31);
  ASSERT_TRUE(space.ok());
  auto tree = space->BuildIndexTreeForKeyName("sweep");
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->size(), 96u);
  EXPECT_TRUE(tree->Validate().ok());
}

INSTANTIATE_TEST_SUITE_P(Dims, CanDimsSweep, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace dupnet::can
