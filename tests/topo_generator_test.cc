#include "topo/tree_generator.h"

#include <gtest/gtest.h>

namespace dupnet::topo {
namespace {

TEST(TreeGeneratorTest, GeneratesRequestedSize) {
  util::Rng rng(1);
  TreeGeneratorOptions options;
  options.num_nodes = 100;
  options.max_degree = 4;
  auto tree = TreeGenerator::Generate(options, &rng);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->size(), 100u);
  EXPECT_EQ(tree->root(), 0u);
  EXPECT_TRUE(tree->Validate().ok());
}

TEST(TreeGeneratorTest, SingleNode) {
  util::Rng rng(1);
  TreeGeneratorOptions options;
  options.num_nodes = 1;
  auto tree = TreeGenerator::Generate(options, &rng);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->size(), 1u);
}

TEST(TreeGeneratorTest, RejectsZeroNodes) {
  util::Rng rng(1);
  TreeGeneratorOptions options;
  options.num_nodes = 0;
  EXPECT_TRUE(
      TreeGenerator::Generate(options, &rng).status().IsInvalidArgument());
}

TEST(TreeGeneratorTest, RejectsZeroDegree) {
  util::Rng rng(1);
  TreeGeneratorOptions options;
  options.max_degree = 0;
  EXPECT_TRUE(
      TreeGenerator::Generate(options, &rng).status().IsInvalidArgument());
}

TEST(TreeGeneratorTest, DeterministicForSameSeed) {
  TreeGeneratorOptions options;
  options.num_nodes = 200;
  util::Rng a(99), b(99);
  auto ta = TreeGenerator::Generate(options, &a);
  auto tb = TreeGenerator::Generate(options, &b);
  ASSERT_TRUE(ta.ok());
  ASSERT_TRUE(tb.ok());
  for (NodeId n = 1; n < 200; ++n) {
    EXPECT_EQ(ta->Parent(n), tb->Parent(n));
  }
}

TEST(TreeGeneratorTest, DegreeOneYieldsChain) {
  util::Rng rng(5);
  TreeGeneratorOptions options;
  options.num_nodes = 10;
  options.max_degree = 1;
  auto tree = TreeGenerator::Generate(options, &rng);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->MaxDepth(), 9u);
}

class GeneratorSweep
    : public ::testing::TestWithParam<std::tuple<size_t, int>> {};

TEST_P(GeneratorSweep, RespectsDegreeBoundAndConnectivity) {
  const auto [num_nodes, max_degree] = GetParam();
  util::Rng rng(42);
  TreeGeneratorOptions options;
  options.num_nodes = num_nodes;
  options.max_degree = max_degree;
  auto tree = TreeGenerator::Generate(options, &rng);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->size(), num_nodes);
  ASSERT_TRUE(tree->Validate().ok());
  for (NodeId node : tree->NodesPreOrder()) {
    EXPECT_LE(tree->Children(node).size(), static_cast<size_t>(max_degree))
        << "node " << node << " exceeds max degree";
  }
}

TEST_P(GeneratorSweep, DeeperTreesForSmallerDegree) {
  const auto [num_nodes, max_degree] = GetParam();
  if (num_nodes < 64) return;
  util::Rng rng(7);
  TreeGeneratorOptions narrow{num_nodes, 2};
  TreeGeneratorOptions wide{num_nodes, 10};
  auto tn = TreeGenerator::Generate(narrow, &rng);
  auto tw = TreeGenerator::Generate(wide, &rng);
  ASSERT_TRUE(tn.ok());
  ASSERT_TRUE(tw.ok());
  // The paper (Fig. 6): average distance to the root falls as D grows.
  EXPECT_GT(tn->AverageDepth(), tw->AverageDepth());
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, GeneratorSweep,
    ::testing::Combine(::testing::Values(size_t{2}, size_t{17}, size_t{64},
                                         size_t{256}, size_t{1024}),
                       ::testing::Values(1, 2, 4, 10)));

}  // namespace
}  // namespace dupnet::topo
