#include "sim/engine.h"

#include <vector>

#include <gtest/gtest.h>

#include "sim/event_queue.h"

namespace dupnet::sim {
namespace {

TEST(EventQueueTest, OrdersByTime) {
  EventQueue q;
  std::vector<int> order;
  q.Push(3.0, [&] { order.push_back(3); });
  q.Push(1.0, [&] { order.push_back(1); });
  q.Push(2.0, [&] { order.push_back(2); });
  while (!q.empty()) q.Pop().action();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TiesBreakFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.Push(5.0, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.Pop().action();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueueTest, PeekTimeMatchesNext) {
  EventQueue q;
  q.Push(2.0, [] {});
  q.Push(1.0, [] {});
  EXPECT_DOUBLE_EQ(q.PeekTime(), 1.0);
  q.Pop();
  EXPECT_DOUBLE_EQ(q.PeekTime(), 2.0);
}

TEST(EventQueueTest, SizeAndPushedCounters) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  q.Push(1.0, [] {});
  q.Push(2.0, [] {});
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pushed(), 2u);
  q.Pop();
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.pushed(), 2u);
}

TEST(EngineTest, ClockStartsAtZero) {
  Engine engine;
  EXPECT_DOUBLE_EQ(engine.Now(), 0.0);
}

TEST(EngineTest, StepAdvancesClockToEventTime) {
  Engine engine;
  engine.ScheduleAt(4.5, [] {});
  EXPECT_TRUE(engine.Step());
  EXPECT_DOUBLE_EQ(engine.Now(), 4.5);
  EXPECT_FALSE(engine.Step());
}

TEST(EngineTest, ScheduleAfterIsRelative) {
  Engine engine;
  double fired_at = -1;
  engine.ScheduleAt(2.0, [&] {
    engine.ScheduleAfter(3.0, [&] { fired_at = engine.Now(); });
  });
  engine.Run();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(EngineTest, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Engine engine;
  int fired = 0;
  engine.ScheduleAt(1.0, [&] { ++fired; });
  engine.ScheduleAt(2.0, [&] { ++fired; });
  engine.ScheduleAt(10.0, [&] { ++fired; });
  engine.RunUntil(5.0);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(engine.Now(), 5.0);
  EXPECT_EQ(engine.pending(), 1u);
}

TEST(EngineTest, RunUntilIncludesEventsExactlyAtBoundary) {
  Engine engine;
  bool fired = false;
  engine.ScheduleAt(5.0, [&] { fired = true; });
  engine.RunUntil(5.0);
  EXPECT_TRUE(fired);
}

TEST(EngineTest, EventsScheduledDuringRunAreProcessed) {
  Engine engine;
  std::vector<double> times;
  engine.ScheduleAt(1.0, [&] {
    times.push_back(engine.Now());
    engine.ScheduleAfter(0.5, [&] { times.push_back(engine.Now()); });
  });
  engine.Run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 1.5);
}

TEST(EngineTest, RunWithEventCapStopsEarly) {
  Engine engine;
  // Self-perpetuating event chain.
  std::function<void()> loop = [&] { engine.ScheduleAfter(1.0, loop); };
  engine.ScheduleAfter(1.0, loop);
  engine.Run(/*max_events=*/100);
  EXPECT_EQ(engine.processed(), 100u);
}

TEST(EngineTest, ProcessedCounter) {
  Engine engine;
  for (int i = 0; i < 7; ++i) engine.ScheduleAt(i, [] {});
  engine.Run();
  EXPECT_EQ(engine.processed(), 7u);
}

TEST(EngineTest, SameTimeEventsRunInScheduleOrderAcrossNesting) {
  Engine engine;
  std::vector<int> order;
  engine.ScheduleAt(1.0, [&] {
    order.push_back(0);
    engine.ScheduleAt(1.0, [&] { order.push_back(2); });
  });
  engine.ScheduleAt(1.0, [&] { order.push_back(1); });
  engine.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

}  // namespace
}  // namespace dupnet::sim
