#include "sim/engine.h"

#include <algorithm>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "sim/event_queue.h"

namespace dupnet::sim {
namespace {

/// Collects (code, arg) pairs for typed-dispatch assertions.
class RecordingTarget : public EventTarget {
 public:
  void OnSimEvent(uint32_t code, uint64_t arg) override {
    events.emplace_back(code, arg);
  }
  std::vector<std::pair<uint32_t, uint64_t>> events;
};

TEST(EventQueueTest, OrdersByTime) {
  EventQueue q;
  std::vector<int> order;
  q.Push(3.0, [&] { order.push_back(3); });
  q.Push(1.0, [&] { order.push_back(1); });
  q.Push(2.0, [&] { order.push_back(2); });
  while (!q.empty()) q.Pop().Fire();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TiesBreakFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.Push(5.0, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.Pop().Fire();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueueTest, TypedEventsCarryTargetCodeAndArg) {
  EventQueue q;
  RecordingTarget target;
  q.Push(2.0, &target, /*code=*/7, /*arg=*/42);
  q.Push(1.0, &target, /*code=*/3, /*arg=*/9);
  Event first = q.Pop();
  EXPECT_EQ(first.target, &target);
  EXPECT_EQ(first.code, 3u);
  EXPECT_EQ(first.arg, 9u);
  first.Fire();
  q.Pop().Fire();
  ASSERT_EQ(target.events.size(), 2u);
  EXPECT_EQ(target.events[0], (std::pair<uint32_t, uint64_t>{3u, 9u}));
  EXPECT_EQ(target.events[1], (std::pair<uint32_t, uint64_t>{7u, 42u}));
}

TEST(EventQueueTest, TypedAndClosureEventsInterleaveInTimeOrder) {
  EventQueue q;
  RecordingTarget target;
  std::vector<int> order;
  q.Push(2.0, [&] { order.push_back(2); });
  q.Push(1.0, &target, 0, 1);
  q.Push(3.0, &target, 0, 3);
  while (!q.empty()) {
    Event e = q.Pop();
    if (e.target != nullptr) {
      order.push_back(static_cast<int>(e.arg));
    }
    e.Fire();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, FifoTieOrderSurvivesInterleavedPopsStress) {
  // Regression for the moved-from comparator hazard: the old
  // priority_queue-based Pop() moved the Event out of top() and then let
  // pop() re-heapify over the moved-from element — comparator calls on a
  // dead payload. With many equal timestamps and pops interleaved with
  // pushes, any comparator misbehaviour during re-heapify scrambles the
  // FIFO tie order. The pooled design keeps payloads out of the heap
  // entirely, so this must hold for any pattern.
  EventQueue q;
  std::vector<uint64_t> order;
  RecordingTarget target;
  uint64_t next_tag = 0;
  // Three waves: push a burst at one of two timestamps, pop a few, repeat.
  for (int wave = 0; wave < 50; ++wave) {
    for (int i = 0; i < 20; ++i) {
      q.Push(wave % 2 == 0 ? 10.0 : 20.0, &target, 0, next_tag++);
    }
    for (int i = 0; i < 10 && !q.empty(); ++i) {
      order.push_back(q.Pop().arg);
    }
  }
  while (!q.empty()) order.push_back(q.Pop().arg);

  // Every event must come out exactly once, and within each timestamp the
  // tags must be strictly increasing (FIFO by push order).
  ASSERT_EQ(order.size(), next_tag);
  std::vector<bool> seen(next_tag, false);
  for (uint64_t tag : order) {
    ASSERT_LT(tag, next_tag);
    EXPECT_FALSE(seen[tag]) << "tag " << tag << " popped twice";
    seen[tag] = true;
  }
  // Equal-time events were pushed with increasing tags; reconstruct each
  // timestamp's subsequence and require it sorted.
  std::vector<uint64_t> even_wave_tags, odd_wave_tags;
  for (uint64_t tag : order) {
    ((tag / 20) % 2 == 0 ? even_wave_tags : odd_wave_tags).push_back(tag);
  }
  EXPECT_TRUE(std::is_sorted(even_wave_tags.begin(), even_wave_tags.end()));
  EXPECT_TRUE(std::is_sorted(odd_wave_tags.begin(), odd_wave_tags.end()));
}

TEST(EventQueueTest, PoolSlotsAreRecycled) {
  EventQueue q;
  RecordingTarget target;
  // Steady-state: never more than 4 pending, so the pool must not grow
  // past its high-water mark no matter how many events flow through.
  for (int round = 0; round < 1000; ++round) {
    for (int i = 0; i < 4; ++i) q.Push(static_cast<SimTime>(i), &target, 0, 0);
    while (!q.empty()) q.Pop().Fire();
  }
  EXPECT_EQ(q.pool_slots(), 4u);
  EXPECT_EQ(q.pushed(), 4000u);
}

TEST(EventQueueTest, PeekTimeMatchesNext) {
  EventQueue q;
  q.Push(2.0, [] {});
  q.Push(1.0, [] {});
  EXPECT_DOUBLE_EQ(q.PeekTime(), 1.0);
  q.Pop();
  EXPECT_DOUBLE_EQ(q.PeekTime(), 2.0);
}

TEST(EventQueueTest, SizeAndPushedCounters) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  q.Push(1.0, [] {});
  q.Push(2.0, [] {});
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pushed(), 2u);
  q.Pop();
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.pushed(), 2u);
}

TEST(EngineTest, ClockStartsAtZero) {
  Engine engine;
  EXPECT_DOUBLE_EQ(engine.Now(), 0.0);
}

TEST(EngineTest, StepAdvancesClockToEventTime) {
  Engine engine;
  engine.ScheduleAt(4.5, [] {});
  EXPECT_TRUE(engine.Step());
  EXPECT_DOUBLE_EQ(engine.Now(), 4.5);
  EXPECT_FALSE(engine.Step());
}

TEST(EngineTest, ScheduleAfterIsRelative) {
  Engine engine;
  double fired_at = -1;
  engine.ScheduleAt(2.0, [&] {
    engine.ScheduleAfter(3.0, [&] { fired_at = engine.Now(); });
  });
  engine.Run();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(EngineTest, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Engine engine;
  int fired = 0;
  engine.ScheduleAt(1.0, [&] { ++fired; });
  engine.ScheduleAt(2.0, [&] { ++fired; });
  engine.ScheduleAt(10.0, [&] { ++fired; });
  engine.RunUntil(5.0);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(engine.Now(), 5.0);
  EXPECT_EQ(engine.pending(), 1u);
}

TEST(EngineTest, RunUntilIncludesEventsExactlyAtBoundary) {
  Engine engine;
  bool fired = false;
  engine.ScheduleAt(5.0, [&] { fired = true; });
  engine.RunUntil(5.0);
  EXPECT_TRUE(fired);
}

TEST(EngineTest, EventsScheduledDuringRunAreProcessed) {
  Engine engine;
  std::vector<double> times;
  engine.ScheduleAt(1.0, [&] {
    times.push_back(engine.Now());
    engine.ScheduleAfter(0.5, [&] { times.push_back(engine.Now()); });
  });
  engine.Run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 1.5);
}

TEST(EngineTest, RunWithEventCapStopsEarly) {
  Engine engine;
  // Self-perpetuating event chain.
  std::function<void()> loop = [&] { engine.ScheduleAfter(1.0, loop); };
  engine.ScheduleAfter(1.0, loop);
  engine.Run(/*max_events=*/100);
  EXPECT_EQ(engine.processed(), 100u);
}

TEST(EngineTest, ProcessedCounter) {
  Engine engine;
  for (int i = 0; i < 7; ++i) engine.ScheduleAt(i, [] {});
  engine.Run();
  EXPECT_EQ(engine.processed(), 7u);
}

TEST(EngineTest, TypedScheduleDispatchesThroughTarget) {
  Engine engine;
  RecordingTarget target;
  engine.ScheduleAt(2.0, &target, /*code=*/1, /*arg=*/11);
  engine.ScheduleAfter(1.0, &target, /*code=*/2, /*arg=*/22);
  engine.Run();
  ASSERT_EQ(target.events.size(), 2u);
  EXPECT_EQ(target.events[0], (std::pair<uint32_t, uint64_t>{2u, 22u}));
  EXPECT_EQ(target.events[1], (std::pair<uint32_t, uint64_t>{1u, 11u}));
  EXPECT_DOUBLE_EQ(engine.Now(), 2.0);
}

TEST(EngineTest, TypedAndClosureEventsShareTheClock) {
  Engine engine;
  RecordingTarget target;
  std::vector<double> closure_times;
  engine.ScheduleAt(1.0, &target, 0, 0);
  engine.ScheduleAt(1.5, [&] { closure_times.push_back(engine.Now()); });
  engine.ScheduleAt(2.0, &target, 0, 1);
  engine.Run();
  EXPECT_EQ(target.events.size(), 2u);
  ASSERT_EQ(closure_times.size(), 1u);
  EXPECT_DOUBLE_EQ(closure_times[0], 1.5);
}

TEST(EngineTest, PoolHighWaterMarkTracksPeakPending) {
  Engine engine;
  RecordingTarget target;
  for (int i = 0; i < 8; ++i) engine.ScheduleAt(i, &target, 0, 0);
  engine.Run();
  EXPECT_EQ(engine.pool_slots(), 8u);
  // A second identical burst reuses the recycled slots.
  for (int i = 0; i < 8; ++i) engine.ScheduleAfter(i, &target, 0, 0);
  engine.Run();
  EXPECT_EQ(engine.pool_slots(), 8u);
}

TEST(EngineTest, SameTimeEventsRunInScheduleOrderAcrossNesting) {
  Engine engine;
  std::vector<int> order;
  engine.ScheduleAt(1.0, [&] {
    order.push_back(0);
    engine.ScheduleAt(1.0, [&] { order.push_back(2); });
  });
  engine.ScheduleAt(1.0, [&] { order.push_back(1); });
  engine.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

}  // namespace
}  // namespace dupnet::sim
