#include "experiment/config.h"
#include "experiment/driver.h"
#include "experiment/replicator.h"
#include "experiment/report.h"

#include <gtest/gtest.h>

namespace dupnet::experiment {
namespace {

ExperimentConfig SmallConfig() {
  ExperimentConfig config;
  config.num_nodes = 128;
  config.lambda = 2.0;
  config.ttl = 600.0;
  config.push_lead = 30.0;
  config.warmup_time = 600.0;
  config.measure_time = 1800.0;
  config.seed = 11;
  return config;
}

TEST(ConfigTest, DefaultsAreValid) {
  EXPECT_TRUE(ExperimentConfig().Validate().ok());
}

TEST(ConfigTest, RejectsBadParameters) {
  ExperimentConfig config;
  config.num_nodes = 1;
  EXPECT_FALSE(config.Validate().ok());
  config = ExperimentConfig();
  config.lambda = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = ExperimentConfig();
  config.push_lead = config.ttl;
  EXPECT_FALSE(config.Validate().ok());
  config = ExperimentConfig();
  config.arrival = ArrivalKind::kPareto;
  config.pareto_alpha = 2.5;
  EXPECT_FALSE(config.Validate().ok());
  config = ExperimentConfig();
  config.zipf_theta = -1;
  EXPECT_FALSE(config.Validate().ok());
  config = ExperimentConfig();
  config.measure_time = 0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(ConfigTest, ParseRoundTrips) {
  for (Scheme s : {Scheme::kPcx, Scheme::kCup, Scheme::kDup}) {
    auto parsed = ParseScheme(SchemeToString(s));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, s);
  }
  for (TopologyKind t : {TopologyKind::kRandomTree, TopologyKind::kChord}) {
    auto parsed = ParseTopology(TopologyToString(t));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, t);
  }
  for (ArrivalKind a : {ArrivalKind::kExponential, ArrivalKind::kPareto}) {
    auto parsed = ParseArrival(ArrivalToString(a));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, a);
  }
  EXPECT_FALSE(ParseScheme("bogus").ok());
  EXPECT_FALSE(ParseTopology("bogus").ok());
  EXPECT_FALSE(ParseArrival("bogus").ok());
}

TEST(ConfigTest, ToStringMentionsScheme) {
  ExperimentConfig config;
  config.scheme = Scheme::kCup;
  EXPECT_NE(config.ToString().find("cup"), std::string::npos);
}

class DriverSchemeTest : public ::testing::TestWithParam<Scheme> {};

TEST_P(DriverSchemeTest, RunsAndProducesSaneMetrics) {
  ExperimentConfig config = SmallConfig();
  config.scheme = GetParam();
  auto metrics = SimulationDriver::Run(config);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_GT(metrics->queries, 1000u);
  EXPECT_GE(metrics->avg_latency_hops, 0.0);
  EXPECT_GT(metrics->avg_cost_hops, 0.0);
  EXPECT_GE(metrics->local_hit_rate, 0.0);
  EXPECT_LE(metrics->local_hit_rate, 1.0);
  EXPECT_GE(metrics->stale_rate, 0.0);
  EXPECT_LE(metrics->stale_rate, 1.0);
  // Cost includes request+reply symmetric hops at minimum.
  EXPECT_GE(metrics->hops.reply(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Schemes, DriverSchemeTest,
                         ::testing::Values(Scheme::kPcx, Scheme::kCup,
                                           Scheme::kDup));

TEST(DriverTest, DeterministicForSameSeed) {
  ExperimentConfig config = SmallConfig();
  auto a = SimulationDriver::Run(config);
  auto b = SimulationDriver::Run(config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->queries, b->queries);
  EXPECT_DOUBLE_EQ(a->avg_latency_hops, b->avg_latency_hops);
  EXPECT_DOUBLE_EQ(a->avg_cost_hops, b->avg_cost_hops);
  EXPECT_EQ(a->hops.total(), b->hops.total());
}

TEST(DriverTest, DifferentSeedsDiffer) {
  ExperimentConfig config = SmallConfig();
  auto a = SimulationDriver::Run(config);
  config.seed = 12;
  auto b = SimulationDriver::Run(config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->hops.total(), b->hops.total());
}

TEST(DriverTest, PcxHasNoPushOrControlTraffic) {
  ExperimentConfig config = SmallConfig();
  config.scheme = Scheme::kPcx;
  auto metrics = SimulationDriver::Run(config);
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->hops.push(), 0u);
  EXPECT_EQ(metrics->hops.control(), 0u);
}

TEST(DriverTest, DupPushesAndSubscribes) {
  ExperimentConfig config = SmallConfig();
  config.scheme = Scheme::kDup;
  auto metrics = SimulationDriver::Run(config);
  ASSERT_TRUE(metrics.ok());
  EXPECT_GT(metrics->hops.push(), 0u);
  EXPECT_GT(metrics->hops.control(), 0u);
}

class DriverTopologyTest : public ::testing::TestWithParam<TopologyKind> {};

TEST_P(DriverTopologyTest, EverySubstrateRuns) {
  ExperimentConfig config = SmallConfig();
  config.topology = GetParam();
  auto metrics = SimulationDriver::Run(config);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_GT(metrics->queries, 0u);
  EXPECT_GT(metrics->avg_cost_hops, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Topologies, DriverTopologyTest,
                         ::testing::Values(TopologyKind::kRandomTree,
                                           TopologyKind::kChord,
                                           TopologyKind::kCan,
                                           TopologyKind::kPastry));

TEST(DriverTest, InstanceApiExposesInternals) {
  ExperimentConfig config = SmallConfig();
  config.scheme = Scheme::kDup;
  SimulationDriver driver(config);
  ASSERT_TRUE(driver.Init().ok());
  EXPECT_EQ(driver.tree().size(), config.num_nodes);
  EXPECT_NE(driver.dup_protocol(), nullptr);
  driver.RunUntil(config.warmup_time / 2);
  EXPECT_EQ(driver.recorder().queries_served(), 0u);  // Still warming up.
  driver.RunToCompletion();
  EXPECT_GT(driver.recorder().queries_served(), 0u);
}

TEST(DriverTest, ChurnRunStaysConsistent) {
  ExperimentConfig config = SmallConfig();
  config.scheme = Scheme::kDup;
  config.churn.join_rate = 0.05;
  config.churn.leave_rate = 0.02;
  config.churn.fail_rate = 0.02;
  config.churn.detect_delay = 10.0;
  config.audit_mode = audit::AuditMode::kCheckpoints;
  SimulationDriver driver(config);
  ASSERT_TRUE(driver.Init().ok());
  // RunToCompletion drains in-flight traffic, runs the reconvergence
  // sequence (clean refresh round + prune), and force-audits globally.
  driver.RunToCompletion();
  EXPECT_GT(driver.churn_events_applied(), 0u);
  EXPECT_TRUE(driver.tree().Validate().ok());
  ASSERT_NE(driver.audit_checker(), nullptr);
  EXPECT_EQ(driver.audit_checker()->total_violations(), 0u)
      << driver.audit_checker()->Summary();
  EXPECT_EQ(driver.tree().size(), driver.live_nodes().size());
}

TEST(DriverTest, ChurnRunWithAllSchemes) {
  for (Scheme scheme : {Scheme::kPcx, Scheme::kCup, Scheme::kDup}) {
    ExperimentConfig config = SmallConfig();
    config.scheme = scheme;
    config.churn.join_rate = 0.05;
    config.churn.fail_rate = 0.05;
    config.churn.detect_delay = 5.0;
    auto metrics = SimulationDriver::Run(config);
    ASSERT_TRUE(metrics.ok()) << SchemeToString(scheme);
    EXPECT_GT(metrics->queries, 0u);
  }
}

TEST(DriverTest, HostDrivenUpdatesRun) {
  ExperimentConfig config = SmallConfig();
  config.scheme = Scheme::kDup;
  config.update_mode = UpdateMode::kHostDriven;
  config.host_change_rate = 1.0 / 300.0;
  auto metrics = SimulationDriver::Run(config);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_GT(metrics->hops.push(), 0u);  // Updates did happen and propagate.
}

TEST(DriverTest, HostDrivenRejectsBadRate) {
  ExperimentConfig config = SmallConfig();
  config.update_mode = UpdateMode::kHostDriven;
  config.host_change_rate = 0.0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(ConfigTest, UpdateModeParseRoundTrips) {
  for (UpdateMode mode : {UpdateMode::kTtlAligned, UpdateMode::kHostDriven}) {
    auto parsed = ParseUpdateMode(UpdateModeToString(mode));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, mode);
  }
  EXPECT_FALSE(ParseUpdateMode("sometimes").ok());
}

TEST(ReplicatorTest, SeedsDiffer) {
  EXPECT_NE(Replicator::SeedForReplication(1, 0),
            Replicator::SeedForReplication(1, 1));
  EXPECT_NE(Replicator::SeedForReplication(1, 0),
            Replicator::SeedForReplication(2, 0));
}

TEST(ReplicatorTest, AggregatesRuns) {
  ExperimentConfig config = SmallConfig();
  config.num_nodes = 64;
  auto summary = Replicator::Run(config, 3);
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->runs.size(), 3u);
  EXPECT_GT(summary->total_queries, 0u);
  EXPECT_GT(summary->cost.mean, 0.0);
}

TEST(ReplicatorTest, RejectsZeroReplications) {
  EXPECT_FALSE(Replicator::Run(SmallConfig(), 0).ok());
}

TEST(CompareSchemesTest, ProducesAllThree) {
  ExperimentConfig config = SmallConfig();
  config.num_nodes = 64;
  auto comparison = CompareSchemes(config, 2);
  ASSERT_TRUE(comparison.ok());
  EXPECT_GT(comparison->pcx.cost.mean, 0.0);
  EXPECT_GT(comparison->cup.cost.mean, 0.0);
  EXPECT_GT(comparison->dup.cost.mean, 0.0);
  EXPECT_GT(comparison->dup_cost_relative_to_pcx(), 0.0);
  EXPECT_GT(comparison->cup_cost_relative_to_pcx(), 0.0);
}

TEST(TableReportTest, RendersAlignedTable) {
  TableReport table("Title", {"a", "long-column"});
  table.AddRow({"1", "2"});
  table.AddSeparator();
  table.AddRow({"333", "4"});
  const std::string rendered = table.ToString();
  EXPECT_NE(rendered.find("Title"), std::string::npos);
  EXPECT_NE(rendered.find("long-column"), std::string::npos);
  EXPECT_NE(rendered.find("| 333"), std::string::npos);
}

TEST(TableReportTest, Cells) {
  EXPECT_EQ(CiCell(1.25, 0.5), "1.250±0.500");
  EXPECT_EQ(PercentCell(0.423), "42.3%");
}

}  // namespace
}  // namespace dupnet::experiment
