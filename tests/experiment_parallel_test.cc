#include "experiment/parallel_runner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "experiment/config.h"
#include "experiment/replicator.h"

namespace dupnet::experiment {
namespace {

ExperimentConfig SmallConfig() {
  ExperimentConfig config;
  config.num_nodes = 128;
  config.lambda = 2.0;
  config.ttl = 600.0;
  config.push_lead = 30.0;
  config.warmup_time = 600.0;
  config.measure_time = 1800.0;
  config.seed = 11;
  return config;
}

void ExpectSameMetrics(const metrics::RunMetrics& a,
                       const metrics::RunMetrics& b) {
  EXPECT_EQ(a.queries, b.queries);
  EXPECT_DOUBLE_EQ(a.avg_latency_hops, b.avg_latency_hops);
  EXPECT_DOUBLE_EQ(a.avg_cost_hops, b.avg_cost_hops);
  EXPECT_DOUBLE_EQ(a.local_hit_rate, b.local_hit_rate);
  EXPECT_DOUBLE_EQ(a.stale_rate, b.stale_rate);
  EXPECT_EQ(a.hops.total(), b.hops.total());
  EXPECT_EQ(a.latency_p50, b.latency_p50);
  EXPECT_EQ(a.latency_p95, b.latency_p95);
  EXPECT_EQ(a.latency_p99, b.latency_p99);
  EXPECT_EQ(a.latency_max, b.latency_max);
}

TEST(ParallelRunnerTest, DefaultJobsIsAtLeastOne) {
  EXPECT_GE(ParallelRunner::DefaultJobs(), 1u);
  EXPECT_EQ(ParallelRunner(0).jobs(), ParallelRunner::DefaultJobs());
  EXPECT_EQ(ParallelRunner(3).jobs(), 3u);
}

TEST(ParallelRunnerTest, SeedForRunSweepZeroMatchesLegacySeries) {
  for (size_t rep = 0; rep < 4; ++rep) {
    EXPECT_EQ(ParallelRunner::SeedForRun(42, 0, rep),
              Replicator::SeedForReplication(42, rep));
  }
}

TEST(ParallelRunnerTest, SeedForRunDistinctAcrossKeyComponents) {
  EXPECT_NE(ParallelRunner::SeedForRun(42, 0, 0),
            ParallelRunner::SeedForRun(42, 0, 1));
  EXPECT_NE(ParallelRunner::SeedForRun(42, 0, 0),
            ParallelRunner::SeedForRun(42, 1, 0));
  EXPECT_NE(ParallelRunner::SeedForRun(42, 1, 0),
            ParallelRunner::SeedForRun(43, 1, 0));
}

TEST(ParallelRunnerTest, BatchMatchesSerialForAnyJobCount) {
  std::vector<ExperimentConfig> batch;
  for (auto scheme : {Scheme::kPcx, Scheme::kCup, Scheme::kDup}) {
    ExperimentConfig config = SmallConfig();
    config.scheme = scheme;
    batch.push_back(config);
  }
  ParallelRunner serial(1);
  const auto expected = serial.RunBatch(batch);
  ASSERT_EQ(expected.size(), batch.size());
  for (size_t jobs : {2u, 8u}) {
    ParallelRunner runner(jobs);
    const auto outcomes = runner.RunBatch(batch);
    ASSERT_EQ(outcomes.size(), expected.size());
    for (size_t i = 0; i < outcomes.size(); ++i) {
      ASSERT_TRUE(outcomes[i].status.ok()) << outcomes[i].status.ToString();
      EXPECT_EQ(outcomes[i].seed, expected[i].seed);
      ExpectSameMetrics(outcomes[i].metrics, expected[i].metrics);
    }
  }
}

TEST(ParallelRunnerTest, ErrorRunDoesNotPoisonSiblings) {
  std::vector<ExperimentConfig> batch(3, SmallConfig());
  batch[1].num_nodes = 1;  // Fails ExperimentConfig::Validate() in Init.
  ParallelRunner runner(8);
  const auto outcomes = runner.RunBatch(batch);
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_FALSE(outcomes[1].status.ok());
  for (size_t i : {0u, 2u}) {
    ASSERT_TRUE(outcomes[i].status.ok()) << outcomes[i].status.ToString();
    EXPECT_GT(outcomes[i].metrics.queries, 0u);
  }
}

TEST(ParallelRunnerTest, TimingAccountsForEveryRun) {
  std::vector<ExperimentConfig> batch(4, SmallConfig());
  ParallelRunner runner(2);
  runner.RunBatch(batch);
  const BatchTiming& timing = runner.last_timing();
  EXPECT_EQ(timing.runs, 4u);
  EXPECT_EQ(timing.jobs, 2u);
  EXPECT_GT(timing.wall_seconds, 0.0);
  EXPECT_GT(timing.total_run_seconds, 0.0);
  EXPECT_GT(timing.runs_per_second(), 0.0);
  EXPECT_LE(timing.min_run_seconds, timing.max_run_seconds);
}

TEST(BatchTimingTest, ZeroSecondFirstRunStaysTheMinimum) {
  // Regression: min_run_seconds used 0.0 as an "unset" sentinel, so a first
  // run measured at exactly 0s (coarse clock, trivial config) was silently
  // overwritten by any later, slower run.
  std::vector<RunOutcome> outcomes(2);
  outcomes[0].wall_seconds = 0.0;
  outcomes[1].wall_seconds = 5.0;
  const BatchTiming timing = BatchTiming::FromOutcomes(1, 5.0, outcomes);
  EXPECT_DOUBLE_EQ(timing.min_run_seconds, 0.0);
  EXPECT_DOUBLE_EQ(timing.max_run_seconds, 5.0);
  EXPECT_DOUBLE_EQ(timing.total_run_seconds, 5.0);
  EXPECT_EQ(timing.runs, 2u);
}

TEST(BatchTimingTest, FromOutcomesAggregates) {
  std::vector<RunOutcome> outcomes(3);
  outcomes[0].wall_seconds = 2.0;
  outcomes[1].wall_seconds = 0.5;
  outcomes[2].wall_seconds = 1.5;
  const BatchTiming timing = BatchTiming::FromOutcomes(2, 2.5, outcomes);
  EXPECT_EQ(timing.jobs, 2u);
  EXPECT_DOUBLE_EQ(timing.min_run_seconds, 0.5);
  EXPECT_DOUBLE_EQ(timing.max_run_seconds, 2.0);
  EXPECT_DOUBLE_EQ(timing.total_run_seconds, 4.0);
  EXPECT_DOUBLE_EQ(timing.runs_per_second(), 3.0 / 2.5);
  EXPECT_DOUBLE_EQ(timing.parallel_efficiency(), 4.0 / (2.5 * 2.0));
}

TEST(BatchTimingTest, EmptyBatchIsAllZeros) {
  const BatchTiming timing = BatchTiming::FromOutcomes(4, 0.0, {});
  EXPECT_EQ(timing.runs, 0u);
  EXPECT_DOUBLE_EQ(timing.min_run_seconds, 0.0);
  EXPECT_DOUBLE_EQ(timing.max_run_seconds, 0.0);
  EXPECT_DOUBLE_EQ(timing.runs_per_second(), 0.0);
}

TEST(ParallelRunnerTest, RunTasksVisitsEveryIndexExactlyOnce) {
  for (size_t jobs : {1u, 4u}) {
    ParallelRunner runner(jobs);
    constexpr size_t kCount = 100;
    // Index-sliced writes: each task owns its slot, exactly the contract
    // RunTasks documents (worker joins publish the writes).
    std::vector<int> visits(kCount, 0);
    runner.RunTasks(kCount, [&](size_t i) { ++visits[i]; });
    for (size_t i = 0; i < kCount; ++i) {
      EXPECT_EQ(visits[i], 1) << "index " << i << " jobs " << jobs;
    }
  }
}

TEST(ParallelRunnerTest, RunTasksHandlesEmptyAndSingleRanges) {
  ParallelRunner runner(8);
  runner.RunTasks(0, [](size_t) { FAIL() << "no task should run"; });
  std::atomic<int> calls{0};
  runner.RunTasks(1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ReplicatorParallelTest, JobsOneAndEightProduceIdenticalRuns) {
  const ExperimentConfig config = SmallConfig();
  auto serial = Replicator::Run(config, 4, /*jobs=*/1);
  auto parallel = Replicator::Run(config, 4, /*jobs=*/8);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  ASSERT_EQ(serial->runs.size(), parallel->runs.size());
  for (size_t i = 0; i < serial->runs.size(); ++i) {
    ExpectSameMetrics(serial->runs[i], parallel->runs[i]);
  }
  EXPECT_DOUBLE_EQ(serial->latency.mean, parallel->latency.mean);
  EXPECT_DOUBLE_EQ(serial->latency.half_width, parallel->latency.half_width);
  EXPECT_DOUBLE_EQ(serial->cost.mean, parallel->cost.mean);
  EXPECT_EQ(serial->total_queries, parallel->total_queries);
}

TEST(ReplicatorParallelTest, CompareSchemesIdenticalAcrossJobCounts) {
  ExperimentConfig config = SmallConfig();
  config.num_nodes = 64;
  auto serial = CompareSchemes(config, 2, /*jobs=*/1);
  auto parallel = CompareSchemes(config, 2, /*jobs=*/4);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  EXPECT_DOUBLE_EQ(serial->pcx.latency.mean, parallel->pcx.latency.mean);
  EXPECT_DOUBLE_EQ(serial->cup.cost.mean, parallel->cup.cost.mean);
  EXPECT_DOUBLE_EQ(serial->dup.cost.mean, parallel->dup.cost.mean);
  EXPECT_DOUBLE_EQ(serial->dup_cost_relative_to_pcx(),
                   parallel->dup_cost_relative_to_pcx());
}

TEST(ReplicatorParallelTest, SweepPointsGetIndependentStreams) {
  // Two sweep points with identical configs: point 0 keeps the legacy
  // stream family, point 1 gets a decorrelated one, so their runs differ.
  std::vector<ExperimentConfig> points(2, SmallConfig());
  auto sweep = RunSweep(points, 2, /*jobs=*/4);
  ASSERT_TRUE(sweep.ok());
  ASSERT_EQ(sweep->points.size(), 2u);
  EXPECT_NE(sweep->points[0].runs[0].hops.total(),
            sweep->points[1].runs[0].hops.total());
  EXPECT_EQ(sweep->timing.runs, 4u);
}

TEST(ReplicatorParallelTest, SweepMatchesPointwiseReplicator) {
  // A single-point sweep is the replicator: bit-identical summaries.
  ExperimentConfig config = SmallConfig();
  config.num_nodes = 64;
  auto sweep = RunSweep({config}, 3, /*jobs=*/8);
  auto direct = Replicator::Run(config, 3, /*jobs=*/1);
  ASSERT_TRUE(sweep.ok());
  ASSERT_TRUE(direct.ok());
  ASSERT_EQ(sweep->points[0].runs.size(), direct->runs.size());
  for (size_t i = 0; i < direct->runs.size(); ++i) {
    ExpectSameMetrics(sweep->points[0].runs[i], direct->runs[i]);
  }
}

TEST(ReplicatorParallelTest, SweepRejectsEmptyInput) {
  EXPECT_FALSE(RunSweep({}, 2, 1).ok());
  EXPECT_FALSE(RunSweep({SmallConfig()}, 0, 1).ok());
  EXPECT_FALSE(CompareSweep({}, 2, 1).ok());
}

TEST(ReplicatorParallelTest, SweepSurfacesRunErrorAfterSiblingsFinish) {
  std::vector<ExperimentConfig> points(2, SmallConfig());
  points[1].num_nodes = 1;  // Invalid: the sweep must report, not abort.
  auto sweep = RunSweep(points, 2, /*jobs=*/4);
  EXPECT_FALSE(sweep.ok());
  EXPECT_TRUE(sweep.status().IsInvalidArgument());
}

}  // namespace
}  // namespace dupnet::experiment
