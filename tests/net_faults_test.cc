// Tests for the fault-injection network layer (docs/fault-injection.md):
// loss/jitter determinism, the ack/timeout/retry machinery, the send-time
// drop accounting, and whole-simulation determinism across job counts when
// faults are armed.

#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "experiment/config.h"
#include "experiment/driver.h"
#include "experiment/replicator.h"
#include "metrics/recorder.h"
#include "net/fault_injection.h"
#include "net/message.h"
#include "net/overlay_network.h"
#include "sim/engine.h"
#include "util/rng.h"

namespace dupnet::net {
namespace {

struct DeliveryLog {
  std::vector<Message> delivered;
  std::vector<sim::SimTime> times;
};

/// One self-contained network whose deliveries are logged.
class Fixture {
 public:
  explicit Fixture(uint64_t seed) : rng_(seed) {
    network_ = std::make_unique<OverlayNetwork>(&engine_, &rng_, &recorder_,
                                                /*mean_hop_latency=*/0.1);
    network_->set_handler([this](const Message& m) {
      log_.delivered.push_back(m);
      log_.times.push_back(engine_.Now());
    });
  }

  void Send(MessageType type, NodeId from, NodeId to) {
    Message m;
    m.type = type;
    m.from = from;
    m.to = to;
    network_->Send(std::move(m));
  }

  sim::Engine engine_;
  util::Rng rng_;
  metrics::Recorder recorder_;
  std::unique_ptr<OverlayNetwork> network_;
  DeliveryLog log_;
};

FaultConfig LossyConfig(double loss_rate) {
  FaultConfig faults;
  faults.loss_rate = loss_rate;
  return faults;
}

FaultConfig ReliableConfig(uint32_t retry_max, double timeout = 1.0) {
  FaultConfig faults;
  faults.retry_max = retry_max;
  faults.retry_timeout = timeout;
  faults.retry_backoff = 2.0;
  return faults;
}

TEST(FaultConfigTest, DefaultIsInactiveAndValid) {
  FaultConfig faults;
  EXPECT_FALSE(faults.lossy());
  EXPECT_FALSE(faults.reliable());
  EXPECT_FALSE(faults.active());
  EXPECT_TRUE(faults.Validate().ok());
}

TEST(FaultConfigTest, ValidateRejectsBadValues) {
  FaultConfig faults;
  faults.loss_rate = 1.5;
  EXPECT_FALSE(faults.Validate().ok());
  faults = FaultConfig();
  faults.jitter = -0.1;
  EXPECT_FALSE(faults.Validate().ok());
  faults = FaultConfig();
  faults.retry_max = 3;
  faults.retry_timeout = 0.0;
  EXPECT_FALSE(faults.Validate().ok());
  faults = FaultConfig();
  faults.retry_max = 3;
  faults.retry_backoff = 0.5;
  EXPECT_FALSE(faults.Validate().ok());
}

TEST(FaultConfigTest, ValidateRejectsNonFiniteKnobs) {
  // Regression pin: the old range checks (`loss_rate < 0 || loss_rate > 1`
  // style) were all false for NaN, so a NaN knob sailed through Validate()
  // and poisoned every downstream latency/loss computation. Every double
  // knob must now be rejected when NaN or infinite.
  const double kBad[] = {std::numeric_limits<double>::quiet_NaN(),
                         std::numeric_limits<double>::infinity(),
                         -std::numeric_limits<double>::infinity()};
  for (const double bad : kBad) {
    FaultConfig faults;
    faults.loss_rate = bad;
    EXPECT_FALSE(faults.Validate().ok()) << "loss_rate " << bad;
    faults = FaultConfig();
    faults.jitter = bad;
    EXPECT_FALSE(faults.Validate().ok()) << "jitter " << bad;
    faults = FaultConfig();
    faults.refresh_interval = bad;
    EXPECT_FALSE(faults.Validate().ok()) << "refresh_interval " << bad;
    faults = FaultConfig();
    faults.retry_max = 3;
    faults.retry_timeout = bad;
    EXPECT_FALSE(faults.Validate().ok()) << "retry_timeout " << bad;
    faults = FaultConfig();
    faults.retry_max = 3;
    faults.retry_backoff = bad;
    EXPECT_FALSE(faults.Validate().ok()) << "retry_backoff " << bad;
  }
}

TEST(FaultConfigTest, ValidateRejectsDormantNonFiniteRetryKnobs) {
  // Even with reliability off (retry_max == 0) the retry knobs must be
  // finite: a NaN parked in a dormant knob would otherwise surface only
  // when a later sweep arms retries.
  FaultConfig faults;
  faults.retry_timeout = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(faults.Validate().ok());
  faults = FaultConfig();
  faults.retry_backoff = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(faults.Validate().ok());
}

TEST(FaultConfigTest, NeedsAckCoversControlAndPushOnly) {
  EXPECT_TRUE(NeedsAck(MessageType::kPush));
  EXPECT_TRUE(NeedsAck(MessageType::kSubscribe));
  EXPECT_TRUE(NeedsAck(MessageType::kUnsubscribe));
  EXPECT_TRUE(NeedsAck(MessageType::kSubstitute));
  EXPECT_TRUE(NeedsAck(MessageType::kInterestRegister));
  EXPECT_FALSE(NeedsAck(MessageType::kRequest));
  EXPECT_FALSE(NeedsAck(MessageType::kReply));
  EXPECT_FALSE(NeedsAck(MessageType::kAck));
}

TEST(NetFaultsTest, DefaultConfigConsumesNoExtraRandomness) {
  // Same seed, one network with an explicit default config, one untouched:
  // delivery times must match exactly AND the generators must be in the
  // same state afterwards (no hidden draws) — the determinism contract.
  Fixture with_config(3), untouched(3);
  with_config.network_->set_faults(FaultConfig());
  for (int i = 0; i < 50; ++i) {
    with_config.Send(MessageType::kPush, 1, static_cast<NodeId>(2 + i));
    untouched.Send(MessageType::kPush, 1, static_cast<NodeId>(2 + i));
  }
  with_config.engine_.Run();
  untouched.engine_.Run();
  ASSERT_EQ(with_config.log_.times.size(), untouched.log_.times.size());
  for (size_t i = 0; i < with_config.log_.times.size(); ++i) {
    EXPECT_DOUBLE_EQ(with_config.log_.times[i], untouched.log_.times[i]);
  }
  EXPECT_EQ(with_config.rng_.NextUInt64(), untouched.rng_.NextUInt64());
}

TEST(NetFaultsTest, LossOutcomesAreSeedDeterministic) {
  auto run = [](uint64_t seed) {
    Fixture f(seed);
    f.network_->set_faults(LossyConfig(0.4));
    for (int i = 0; i < 200; ++i) {
      f.Send(MessageType::kRequest, 1, static_cast<NodeId>(2 + i));
    }
    f.engine_.Run();
    std::vector<NodeId> reached;
    for (const Message& m : f.log_.delivered) reached.push_back(m.to);
    return reached;
  };
  EXPECT_EQ(run(12), run(12));
  EXPECT_NE(run(12), run(13));  // Different stream, different casualties.
}

TEST(NetFaultsTest, LossRateDropsRoughlyThatFraction) {
  Fixture f(5);
  f.network_->set_faults(LossyConfig(0.25));
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    f.Send(MessageType::kRequest, 1, static_cast<NodeId>(2 + i));
  }
  f.engine_.Run();
  const double delivered = static_cast<double>(f.log_.delivered.size());
  EXPECT_NEAR(delivered / n, 0.75, 0.03);
  EXPECT_EQ(f.recorder_.delivery().total_sent(), static_cast<uint64_t>(n));
  EXPECT_EQ(f.recorder_.delivery().total_delivered() +
                f.recorder_.delivery().total_dropped(),
            static_cast<uint64_t>(n));
  EXPECT_NEAR(f.recorder_.DeliveryRatio(), 0.75, 0.03);
}

TEST(NetFaultsTest, LostMessagesStillChargeTheirHops) {
  Fixture f(5);
  f.network_->set_loss_filter([](const Message&) { return true; });
  f.Send(MessageType::kPush, 1, 2);
  f.engine_.Run();
  EXPECT_TRUE(f.log_.delivered.empty());
  // The packet traveled and died in flight: the paper's cost metric counts
  // the wasted transmission.
  EXPECT_EQ(f.recorder_.hops().push(), 1u);
  EXPECT_EQ(f.recorder_.delivery().total_dropped(), 1u);
}

TEST(NetFaultsTest, JitterDelaysDeliveryDeterministically) {
  Fixture plain(9), jittered(9);
  FaultConfig faults;
  faults.jitter = 5.0;
  jittered.network_->set_faults(faults);
  plain.Send(MessageType::kRequest, 1, 2);
  jittered.Send(MessageType::kRequest, 1, 2);
  plain.engine_.Run();
  jittered.engine_.Run();
  ASSERT_EQ(plain.log_.times.size(), 1u);
  ASSERT_EQ(jittered.log_.times.size(), 1u);
  // Exp draw is the same (same stream position); the uniform jitter addend
  // comes on top.
  EXPECT_GT(jittered.log_.times[0], plain.log_.times[0]);
  EXPECT_LT(jittered.log_.times[0], plain.log_.times[0] + 5.0);
}

TEST(NetFaultsTest, SendTimeDropToDownNodeChargesAllHops) {
  Fixture f(5);
  f.network_->SetNodeDown(2, true);
  Message m;
  m.type = MessageType::kPush;
  m.from = 1;
  m.to = 2;
  f.network_->SendMultiHop(std::move(m), /*extra_hops=*/3);
  f.engine_.Run();
  EXPECT_TRUE(f.log_.delivered.empty());
  EXPECT_EQ(f.recorder_.hops().push(), 4u);
  EXPECT_EQ(f.recorder_.delivery().total_sent(), 1u);
  EXPECT_EQ(f.recorder_.delivery().total_dropped(), 1u);
}

TEST(NetFaultsTest, RetryRecoversFromTransientLoss) {
  Fixture f(5);
  f.network_->set_faults(ReliableConfig(3));
  int attempts = 0;
  f.network_->set_loss_filter([&attempts](const Message& m) {
    if (m.type != MessageType::kSubscribe) return false;
    return ++attempts == 1;  // Only the first transmission is lost.
  });
  f.Send(MessageType::kSubscribe, 2, 1);
  f.engine_.Run();
  ASSERT_EQ(f.log_.delivered.size(), 1u);
  EXPECT_EQ(f.log_.delivered[0].type, MessageType::kSubscribe);
  const auto& d = f.recorder_.delivery();
  EXPECT_EQ(d.retries_for(metrics::HopClass::kControl), 1u);
  EXPECT_EQ(d.total_giveups(), 0u);
  EXPECT_EQ(f.network_->pending_acks(), 0u);  // Acked and settled.
}

TEST(NetFaultsTest, GivesUpAfterRetryCap) {
  Fixture f(5);
  f.network_->set_faults(ReliableConfig(2));
  f.network_->set_loss_filter(
      [](const Message& m) { return m.type == MessageType::kSubscribe; });
  f.Send(MessageType::kSubscribe, 2, 1);
  f.engine_.Run();
  EXPECT_TRUE(f.log_.delivered.empty());
  const auto& d = f.recorder_.delivery();
  // Initial transmission + 2 retries, all lost, then the sender gives up.
  EXPECT_EQ(d.total_sent(), 3u);
  EXPECT_EQ(d.total_dropped(), 3u);
  EXPECT_EQ(d.retries_for(metrics::HopClass::kControl), 2u);
  EXPECT_EQ(d.total_giveups(), 1u);
  EXPECT_EQ(f.network_->pending_acks(), 0u);
}

TEST(NetFaultsTest, LostAckCausesDuplicateDelivery) {
  Fixture f(5);
  f.network_->set_faults(ReliableConfig(2));
  f.network_->set_loss_filter(
      [](const Message& m) { return m.type == MessageType::kAck; });
  f.Send(MessageType::kPush, 1, 2);
  f.engine_.Run();
  // Every transmission arrives, every ack dies: the receiver sees the push
  // once per attempt — at-least-once delivery, so protocols must dedup.
  EXPECT_EQ(f.log_.delivered.size(), 3u);
  EXPECT_EQ(f.recorder_.delivery().total_giveups(), 1u);
}

TEST(NetFaultsTest, RequestsStayBestEffortUnderReliability) {
  Fixture f(5);
  f.network_->set_faults(ReliableConfig(3));
  f.network_->set_loss_filter(
      [](const Message& m) { return m.type == MessageType::kRequest; });
  f.Send(MessageType::kRequest, 1, 2);
  f.engine_.Run();
  // No ack class for requests: one loss is final, nothing retries.
  EXPECT_TRUE(f.log_.delivered.empty());
  EXPECT_EQ(f.recorder_.delivery().total_sent(), 1u);
  EXPECT_EQ(f.recorder_.delivery().retries_for(metrics::HopClass::kRequest),
            0u);
  EXPECT_EQ(f.network_->pending_acks(), 0u);
}

TEST(NetFaultsTest, RetryReachesDestinationThatCameBackUp) {
  Fixture f(5);
  f.network_->set_faults(ReliableConfig(3, /*timeout=*/1.0));
  f.network_->SetNodeDown(2, true);
  f.Send(MessageType::kPush, 1, 2);
  // Back up before the first retry timer (t = 1.0) fires.
  f.engine_.ScheduleAfter(0.5, [&f] { f.network_->SetNodeDown(2, false); });
  f.engine_.Run();
  ASSERT_EQ(f.log_.delivered.size(), 1u);
  const auto& d = f.recorder_.delivery();
  EXPECT_EQ(d.total_dropped(), 1u);  // The send-time drop.
  EXPECT_EQ(d.retries_for(metrics::HopClass::kPush), 1u);
  EXPECT_EQ(d.total_giveups(), 0u);
}

TEST(NetFaultsTest, AcksAreInvisibleToDeliveryCounters) {
  Fixture f(5);
  f.network_->set_faults(ReliableConfig(2));
  f.Send(MessageType::kPush, 1, 2);
  f.engine_.Run();
  ASSERT_EQ(f.log_.delivered.size(), 1u);
  const auto& d = f.recorder_.delivery();
  // One push sent and delivered; the ack adds nothing anywhere.
  EXPECT_EQ(d.total_sent(), 1u);
  EXPECT_EQ(d.total_delivered(), 1u);
  // The ack is free_ride, so no control hops either.
  EXPECT_EQ(f.recorder_.hops().control(), 0u);
}

// ---------------------------------------------------------------------------
// Whole-simulation determinism and repair under loss.
// ---------------------------------------------------------------------------

experiment::ExperimentConfig SmallLossyConfig() {
  experiment::ExperimentConfig config;
  config.num_nodes = 128;
  config.lambda = 2.0;
  config.ttl = 600.0;
  config.push_lead = 30.0;
  config.warmup_time = 600.0;
  config.measure_time = 1800.0;
  config.seed = 11;
  config.faults.loss_rate = 0.05;
  config.faults.jitter = 0.2;
  config.faults.retry_max = 3;
  config.faults.retry_timeout = 2.0;
  config.faults.refresh_interval = 300.0;
  return config;
}

TEST(NetFaultsTest, LossySweepIsBitIdenticalAcrossJobCounts) {
  std::vector<experiment::ExperimentConfig> points;
  for (auto scheme : {experiment::Scheme::kCup, experiment::Scheme::kDup}) {
    experiment::ExperimentConfig config = SmallLossyConfig();
    config.scheme = scheme;
    points.push_back(config);
  }
  auto serial = experiment::RunSweep(points, 2, /*jobs=*/1);
  auto parallel = experiment::RunSweep(points, 2, /*jobs=*/3);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  ASSERT_EQ(serial->points.size(), parallel->points.size());
  for (size_t p = 0; p < serial->points.size(); ++p) {
    const auto& a = serial->points[p].runs;
    const auto& b = parallel->points[p].runs;
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].queries, b[i].queries);
      EXPECT_DOUBLE_EQ(a[i].avg_latency_hops, b[i].avg_latency_hops);
      EXPECT_DOUBLE_EQ(a[i].avg_cost_hops, b[i].avg_cost_hops);
      EXPECT_DOUBLE_EQ(a[i].delivery_ratio, b[i].delivery_ratio);
      EXPECT_EQ(a[i].delivery.total_dropped(), b[i].delivery.total_dropped());
      EXPECT_EQ(a[i].delivery.total_retries(), b[i].delivery.total_retries());
      EXPECT_EQ(a[i].hops.total(), b[i].hops.total());
    }
  }
}

TEST(NetFaultsTest, LossyRunRecordsLossAndRetries) {
  auto metrics = experiment::SimulationDriver::Run(SmallLossyConfig());
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_GT(metrics->queries, 0u);
  EXPECT_LT(metrics->delivery_ratio, 1.0);
  EXPECT_GT(metrics->delivery_ratio, 0.8);
  EXPECT_GT(metrics->delivery.total_dropped(), 0u);
  EXPECT_GT(metrics->delivery.total_retries(), 0u);
}

TEST(NetFaultsTest, DupTreeReconvergesAfterLossyRun) {
  experiment::ExperimentConfig config = SmallLossyConfig();
  config.scheme = experiment::Scheme::kDup;
  // Checkpointed auditing makes RunToCompletion finish with the
  // reconvergence sequence (stop the loss, one clean refresh round, prune
  // entries the refresh did not re-announce) and then a forced global
  // audit: the upstream subscription state must be fully consistent again
  // in bounded simulation time.
  config.audit_mode = audit::AuditMode::kCheckpoints;
  experiment::SimulationDriver driver(config);
  ASSERT_TRUE(driver.Init().ok());
  driver.RunToCompletion();
  ASSERT_NE(driver.audit_checker(), nullptr);
  EXPECT_EQ(driver.audit_checker()->total_violations(), 0u)
      << driver.audit_checker()->Summary();
}

}  // namespace
}  // namespace dupnet::net
