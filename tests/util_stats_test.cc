#include "util/stats.h"

#include <cmath>

#include <gtest/gtest.h>

namespace dupnet::util {
namespace {

TEST(RunningStatsTest, EmptyHasZeroCount) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.Add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.Mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.Min(), 3.5);
  EXPECT_DOUBLE_EQ(s.Max(), 3.5);
}

TEST(RunningStatsTest, KnownMeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  // Sample variance of this classic dataset is 32/7.
  EXPECT_NEAR(s.SampleVariance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.SampleStdDev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.Min(), 2.0);
  EXPECT_DOUBLE_EQ(s.Max(), 9.0);
}

TEST(RunningStatsTest, MergeMatchesCombinedStream) {
  RunningStats a, b, combined;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10;
    a.Add(x);
    combined.Add(x);
  }
  for (int i = 50; i < 120; ++i) {
    const double x = std::cos(i) * 3 + 1;
    b.Add(x);
    combined.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_NEAR(a.Mean(), combined.Mean(), 1e-9);
  EXPECT_NEAR(a.SampleVariance(), combined.SampleVariance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.Min(), combined.Min());
  EXPECT_DOUBLE_EQ(a.Max(), combined.Max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, empty;
  a.Add(1.0);
  a.Add(2.0);
  const double mean = a.Mean();
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.Mean(), mean);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 2u);
}

TEST(RunningStatsTest, ResetClearsEverything) {
  RunningStats s;
  s.Add(5.0);
  s.Reset();
  EXPECT_EQ(s.count(), 0u);
}

TEST(StudentTTest, KnownQuantiles) {
  EXPECT_DOUBLE_EQ(StudentT975(1), 12.706);
  EXPECT_DOUBLE_EQ(StudentT975(4), 2.776);
  EXPECT_DOUBLE_EQ(StudentT975(10), 2.228);
  EXPECT_DOUBLE_EQ(StudentT975(30), 2.042);
  EXPECT_DOUBLE_EQ(StudentT975(100), 1.96);
  EXPECT_DOUBLE_EQ(StudentT975(0), 0.0);
}

TEST(ConfidenceIntervalTest, EmptySamples) {
  const ConfidenceInterval ci = ConfidenceInterval95({});
  EXPECT_EQ(ci.samples, 0u);
  EXPECT_DOUBLE_EQ(ci.mean, 0.0);
  EXPECT_DOUBLE_EQ(ci.half_width, 0.0);
}

TEST(ConfidenceIntervalTest, SingleSampleHasNoWidth) {
  const ConfidenceInterval ci = ConfidenceInterval95({4.2});
  EXPECT_DOUBLE_EQ(ci.mean, 4.2);
  EXPECT_DOUBLE_EQ(ci.half_width, 0.0);
}

TEST(ConfidenceIntervalTest, HandComputedFiveSamples) {
  // Samples 1..5: mean 3, sample stddev sqrt(2.5), stderr sqrt(0.5),
  // t(4) = 2.776 -> half width = 2.776 * sqrt(0.5).
  const ConfidenceInterval ci = ConfidenceInterval95({1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(ci.mean, 3.0);
  EXPECT_NEAR(ci.half_width, 2.776 * std::sqrt(0.5), 1e-9);
  EXPECT_NEAR(ci.lower(), 3.0 - ci.half_width, 1e-12);
  EXPECT_NEAR(ci.upper(), 3.0 + ci.half_width, 1e-12);
}

TEST(ConfidenceIntervalTest, IdenticalSamplesHaveZeroWidth) {
  const ConfidenceInterval ci = ConfidenceInterval95({2.5, 2.5, 2.5});
  EXPECT_DOUBLE_EQ(ci.mean, 2.5);
  EXPECT_DOUBLE_EQ(ci.half_width, 0.0);
}

TEST(ConfidenceIntervalTest, WidthShrinksWithMoreSamples) {
  std::vector<double> few = {1, 3, 1, 3};
  std::vector<double> many;
  for (int i = 0; i < 100; ++i) many.push_back(i % 2 == 0 ? 1.0 : 3.0);
  EXPECT_GT(ConfidenceInterval95(few).half_width,
            ConfidenceInterval95(many).half_width);
}

}  // namespace
}  // namespace dupnet::util
