#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include <gtest/gtest.h>

namespace dupnet::util {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUInt64(), b.NextUInt64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUInt64() == b.NextUInt64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextDoubleOpenLowExcludesZero) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GT(rng.NextDoubleOpenLow(), 0.0);
    EXPECT_LE(rng.NextDoubleOpenLow(), 1.0);
  }
}

TEST(RngTest, UniformIntRespectsBounds) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t v = rng.UniformInt(3, 9);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 9u);
  }
}

TEST(RngTest, UniformIntSingletonRange) {
  Rng rng(11);
  EXPECT_EQ(rng.UniformInt(5, 5), 5u);
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(13);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(0, 7));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformIntIsApproximatelyUniform) {
  Rng rng(17);
  const int buckets = 10;
  const int draws = 100000;
  std::vector<int> counts(buckets, 0);
  for (int i = 0; i < draws; ++i) {
    ++counts[rng.UniformInt(0, buckets - 1)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, draws / buckets, draws / buckets * 0.1);
  }
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(19);
  const double mean = 0.1;
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(mean);
  EXPECT_NEAR(sum / n, mean, mean * 0.03);
}

TEST(RngTest, ExponentialIsPositive) {
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.Exponential(5.0), 0.0);
}

TEST(RngTest, ParetoMeanMatchesLomaxFormula) {
  // Mean of the Lomax/Pareto-II with shape alpha, scale k is k/(alpha-1).
  Rng rng(29);
  const double alpha = 1.5, k = 2.0;
  double sum = 0;
  const int n = 2000000;
  for (int i = 0; i < n; ++i) sum += rng.Pareto(alpha, k);
  EXPECT_NEAR(sum / n, k / (alpha - 1.0), 0.2);
}

TEST(RngTest, ParetoCdfMatchesClosedForm) {
  // P(X <= x) = 1 - (k/(x+k))^alpha.
  Rng rng(31);
  const double alpha = 1.2, k = 0.5, x = 1.0;
  const int n = 200000;
  int below = 0;
  for (int i = 0; i < n; ++i) {
    if (rng.Pareto(alpha, k) <= x) ++below;
  }
  const double expected = 1.0 - std::pow(k / (x + k), alpha);
  EXPECT_NEAR(static_cast<double>(below) / n, expected, 0.01);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(37);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  EXPECT_FALSE(rng.Bernoulli(-0.5));
  EXPECT_TRUE(rng.Bernoulli(1.5));
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(41);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(43);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  EXPECT_FALSE(std::equal(v.begin(), v.end(), shuffled.begin()));
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(v, shuffled);
}

TEST(RngTest, ShuffleEmptyAndSingleton) {
  Rng rng(47);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {9};
  rng.Shuffle(&one);
  EXPECT_EQ(one, std::vector<int>{9});
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(53);
  Rng child = parent.Fork();
  // Child and parent should not produce the same sequence.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.NextUInt64() == child.NextUInt64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

class RngSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngSeedSweep, UniformDoubleWithinBounds) {
  Rng rng(GetParam());
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.UniformDouble(-2.5, 4.5);
    EXPECT_GE(x, -2.5);
    EXPECT_LT(x, 4.5);
  }
}

TEST_P(RngSeedSweep, ExponentialAlwaysFiniteAndPositive) {
  Rng rng(GetParam());
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Exponential(1.0);
    EXPECT_GT(x, 0.0);
    EXPECT_TRUE(std::isfinite(x));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0u, 1u, 2u, 42u, 1337u,
                                           0xFFFFFFFFFFFFFFFFull));

}  // namespace
}  // namespace dupnet::util
