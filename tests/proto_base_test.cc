// Message-level tests of the shared query/reply machinery in
// TreeProtocolBase (exercised through PCX, the thinnest subclass).

#include <gtest/gtest.h>

#include "proto/pcx.h"
#include "test_util.h"

namespace dupnet::proto {
namespace {

using ::dupnet::testing::MakePaperTree;
using ::dupnet::testing::ProtocolHarness;

class BaseFlowTest : public ::testing::Test {
 protected:
  BaseFlowTest() : harness_(MakePaperTree()) {}

  void MakeProtocol(ProtocolOptions options = ProtocolOptions()) {
    protocol_ = std::make_unique<PcxProtocol>(&harness_.network(),
                                              &harness_.tree(), options);
    harness_.Attach(protocol_.get());
    harness_.Publish(1);
  }

  ProtocolHarness harness_;
  std::unique_ptr<PcxProtocol> protocol_;
};

TEST_F(BaseFlowTest, LatencyEqualsRequestDistanceNotRoundTrip) {
  MakeProtocol();
  harness_.QueryAt(8);  // Depth 5.
  // The paper's latency metric counts only the request's travel.
  EXPECT_DOUBLE_EQ(harness_.recorder().AverageLatencyHops(), 5.0);
  // The cost metric counts both directions.
  EXPECT_DOUBLE_EQ(harness_.recorder().AverageCostHops(), 10.0);
}

TEST_F(BaseFlowTest, ConcurrentQueriesFromSiblingsBothComplete) {
  MakeProtocol();
  // Two queries in flight at once (no drain in between).
  protocol_->OnLocalQuery(7);
  protocol_->OnLocalQuery(8);
  harness_.Drain();
  EXPECT_EQ(harness_.recorder().queries_issued(), 2u);
  EXPECT_EQ(harness_.recorder().queries_served(), 2u);
}

TEST_F(BaseFlowTest, ManyOutstandingQueriesFromSameNode) {
  MakeProtocol();
  for (int i = 0; i < 5; ++i) protocol_->OnLocalQuery(6);
  harness_.Drain();
  // All five issued before any reply: each misses and climbs (the cache
  // only fills when the first reply lands).
  EXPECT_EQ(harness_.recorder().queries_served(), 5u);
  EXPECT_EQ(harness_.recorder().hops().request(), 20u);
}

TEST_F(BaseFlowTest, ReplyRetracesTheRecordedRoute) {
  MakeProtocol();
  harness_.QueryAt(7);
  // Request and reply hop counts are symmetric because the reply walks the
  // recorded route backwards.
  EXPECT_EQ(harness_.recorder().hops().request(),
            harness_.recorder().hops().reply());
}

TEST_F(BaseFlowTest, MidFlightTopologyChangeStillDeliversReply) {
  MakeProtocol();
  protocol_->OnLocalQuery(7);  // Route will be 7 -> 6 -> 5 -> 3 -> 2 -> 1.
  // While the request is in flight, splice a new node above N3. The reply
  // follows the *recorded* route, not the new topology.
  ASSERT_TRUE(harness_.tree().SplitEdge(2, 3, 23).ok());
  harness_.Drain();
  EXPECT_EQ(harness_.recorder().queries_served(), 1u);
}

TEST_F(BaseFlowTest, QueryAtEveryNodeTerminates) {
  MakeProtocol();
  for (NodeId n = 1; n <= 8; ++n) protocol_->OnLocalQuery(n);
  harness_.Drain();
  EXPECT_EQ(harness_.recorder().queries_served(), 8u);
}

TEST_F(BaseFlowTest, StaleFlagReflectsSupersededVersion) {
  MakeProtocol();
  harness_.QueryAt(6);  // Caches v1.
  harness_.Publish(2);
  harness_.QueryAt(7);  // Served by N6's now-superseded copy.
  EXPECT_EQ(harness_.recorder().stale_serves(), 1u);
  // The copy N7 received is v1.
  EXPECT_EQ(protocol_->CacheOf(7).stored_version(), 1u);
}

TEST_F(BaseFlowTest, AuthorityReStampsOnlyInPerCopyMode) {
  ProtocolOptions per_copy;
  per_copy.ttl = 100.0;
  per_copy.per_copy_ttl = true;
  MakeProtocol(per_copy);
  EXPECT_GT(protocol_->latest_version(), 0u);
  EXPECT_EQ(protocol_->latest_version(), 1u);
}

TEST_F(BaseFlowTest, RecorderDisabledDuringWarmupStyleUse) {
  MakeProtocol();
  harness_.recorder().set_enabled(false);
  harness_.QueryAt(6);
  EXPECT_EQ(harness_.recorder().queries_served(), 0u);
  EXPECT_EQ(harness_.recorder().hops().total(), 0u);
  harness_.recorder().set_enabled(true);
  harness_.QueryAt(7);
  EXPECT_EQ(harness_.recorder().queries_served(), 1u);
}

TEST_F(BaseFlowTest, NodeInterestedTracksOwnQueries) {
  ProtocolOptions options;
  options.threshold_c = 2;
  MakeProtocol(options);
  EXPECT_FALSE(protocol_->NodeInterested(6));
  harness_.QueryAt(6, 3);
  EXPECT_TRUE(protocol_->NodeInterested(6));
}

}  // namespace
}  // namespace dupnet::proto
