// Event-engine determinism regression. The golden values below are the
// full-precision RunMetrics produced by the pre-pooled (closure-per-event)
// engine for PCX/CUP/DUP on the small reference config, lossless and lossy.
// The pooled typed event engine must reproduce every one of them
// bit-for-bit — the (time, seq) execution order and the RNG draw order are
// the simulator's determinism contract — and must keep doing so at any
// parallel-runner job count.
//
// If a change legitimately alters the simulation (a model fix, a new RNG
// draw), regenerate this table with a %.17g print of the twelve metrics per
// row and say so in the commit message; any unexplained diff is a bug.

#include <gtest/gtest.h>

#include <vector>

#include "experiment/config.h"
#include "experiment/driver.h"
#include "experiment/parallel_runner.h"
#include "metrics/summary.h"

namespace dupnet::experiment {
namespace {

struct GoldenRow {
  Scheme scheme;
  bool lossy;
  uint64_t queries;
  double avg_latency_hops;
  double avg_cost_hops;
  double local_hit_rate;
  double stale_rate;
  uint64_t hops_request, hops_reply, hops_push, hops_control;
  double delivery_ratio;
  uint64_t sent, delivered, dropped, retries, giveups;
  uint64_t p50, p95, p99, max;
};

// Captured from the pre-refactor engine (seed 11, 128 nodes, lambda 2,
// ttl 600, push_lead 30, warmup 600, measure 1800; lossy adds loss 5%,
// jitter 0.02, retry 3x1.0s backoff 2.0, refresh 300s).
const GoldenRow kGolden[] = {
    {Scheme::kPcx, false, 3702u, 0.40491626148028059, 0.80983252296056185,
     0.86088600756347922, 0.35332252836304701, 1499u, 1499u, 0u, 0u, 1.0,
     2998u, 2998u, 0u, 0u, 0u, 0u, 3u, 7u, 7u},
    {Scheme::kCup, false, 3624u, 0.18267108167770396, 0.41004415011037526,
     0.94177704194260481, 0.035596026490066227, 664u, 664u, 124u, 34u,
     0.99932705248990583, 1486u, 1485u, 0u, 0u, 0u, 0u, 1u, 6u, 7u},
    {Scheme::kDup, false, 3691u, 0.042535898130587932, 0.19290165266865347,
     0.96071525331888374, 0.0097534543484150641, 157u, 157u, 260u, 138u, 1.0,
     712u, 712u, 0u, 0u, 0u, 0u, 0u, 1u, 2u},
    {Scheme::kPcx, true, 3422u, 0.3673290473407364, 0.99824663939216829,
     0.86353009935710112, 0.35184102863822325, 1924u, 1492u, 0u, 0u,
     0.9473067915690867, 3416u, 3236u, 180u, 0u, 0u, 0u, 3u, 7u, 7u},
    {Scheme::kCup, true, 3661u, 0.015842665938268278, 0.33351543294181918,
     0.98579623053810439, 0.0051898388418464897, 64u, 62u, 357u, 738u,
     0.86568386568386568, 1221u, 1057u, 62u, 95u, 0u, 0u, 0u, 1u, 2u},
    {Scheme::kDup, true, 3564u, 0.039842873176206543, 0.40937149270482603,
     0.96268237934904599, 0.011223344556677889, 165u, 153u, 285u, 856u,
     0.89581905414667584, 1459u, 1307u, 80u, 107u, 1u, 0u, 0u, 1u, 2u},
};

ExperimentConfig ConfigFor(const GoldenRow& row) {
  ExperimentConfig config;
  config.scheme = row.scheme;
  config.num_nodes = 128;
  config.lambda = 2.0;
  config.ttl = 600.0;
  config.push_lead = 30.0;
  config.warmup_time = 600.0;
  config.measure_time = 1800.0;
  config.seed = 11;
  if (row.lossy) {
    config.faults.loss_rate = 0.05;
    config.faults.jitter = 0.02;
    config.faults.retry_max = 3;
    config.faults.retry_timeout = 1.0;
    config.faults.retry_backoff = 2.0;
    config.faults.refresh_interval = 300.0;
  }
  return config;
}

// EXPECT_EQ on doubles on purpose: the contract is bit-identity, not
// closeness (the %.17g literals round-trip exactly).
void ExpectMatchesGolden(const metrics::RunMetrics& m, const GoldenRow& row,
                         const char* context) {
  SCOPED_TRACE(context);
  EXPECT_EQ(m.queries, row.queries);
  EXPECT_EQ(m.avg_latency_hops, row.avg_latency_hops);
  EXPECT_EQ(m.avg_cost_hops, row.avg_cost_hops);
  EXPECT_EQ(m.local_hit_rate, row.local_hit_rate);
  EXPECT_EQ(m.stale_rate, row.stale_rate);
  EXPECT_EQ(m.hops.request(), row.hops_request);
  EXPECT_EQ(m.hops.reply(), row.hops_reply);
  EXPECT_EQ(m.hops.push(), row.hops_push);
  EXPECT_EQ(m.hops.control(), row.hops_control);
  EXPECT_EQ(m.delivery_ratio, row.delivery_ratio);
  EXPECT_EQ(m.delivery.total_sent(), row.sent);
  EXPECT_EQ(m.delivery.total_delivered(), row.delivered);
  EXPECT_EQ(m.delivery.total_dropped(), row.dropped);
  EXPECT_EQ(m.delivery.total_retries(), row.retries);
  EXPECT_EQ(m.delivery.total_giveups(), row.giveups);
  EXPECT_EQ(m.latency_p50, row.p50);
  EXPECT_EQ(m.latency_p95, row.p95);
  EXPECT_EQ(m.latency_p99, row.p99);
  EXPECT_EQ(m.latency_max, row.max);
}

const char* RowName(const GoldenRow& row) {
  switch (row.scheme) {
    case Scheme::kPcx:
      return row.lossy ? "pcx/lossy" : "pcx/lossless";
    case Scheme::kCup:
      return row.lossy ? "cup/lossy" : "cup/lossless";
    case Scheme::kDup:
      return row.lossy ? "dup/lossy" : "dup/lossless";
  }
  return "?";
}

TEST(SimDeterminismTest, MatchesPrePoolingEngineGoldenValues) {
  for (const GoldenRow& row : kGolden) {
    auto metrics = SimulationDriver::Run(ConfigFor(row));
    ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
    ExpectMatchesGolden(*metrics, row, RowName(row));
  }
}

// The calendar scheduler (the default, exercised by every other test here)
// and the reference binary heap must produce the same execution order —
// the goldens hold bit-for-bit under BOTH scheduler settings, serially and
// in the parallel runner (see also sim_scheduler_equivalence_test.cc for
// the queue-level property tests).
TEST(SimDeterminismTest, GoldenValuesHoldUnderBothSchedulers) {
  for (sim::SchedulerKind kind :
       {sim::SchedulerKind::kHeap, sim::SchedulerKind::kCalendar}) {
    std::vector<ExperimentConfig> batch;
    for (const GoldenRow& row : kGolden) {
      ExperimentConfig config = ConfigFor(row);
      config.scheduler = kind;
      batch.push_back(config);
    }
    for (size_t jobs : {1u, 4u}) {
      ParallelRunner runner(jobs);
      const auto outcomes = runner.RunBatch(batch);
      ASSERT_EQ(outcomes.size(), std::size(kGolden));
      for (size_t i = 0; i < outcomes.size(); ++i) {
        SCOPED_TRACE("scheduler=" +
                     std::string(SchedulerToString(batch[i].scheduler)) +
                     " jobs=" + std::to_string(jobs));
        ASSERT_TRUE(outcomes[i].status.ok()) << outcomes[i].status.ToString();
        ExpectMatchesGolden(outcomes[i].metrics, kGolden[i],
                            RowName(kGolden[i]));
      }
    }
  }
}

TEST(SimDeterminismTest, GoldenValuesHoldAtAnyJobCount) {
  std::vector<ExperimentConfig> batch;
  for (const GoldenRow& row : kGolden) batch.push_back(ConfigFor(row));
  for (size_t jobs : {1u, 2u, 5u}) {
    ParallelRunner runner(jobs);
    const auto outcomes = runner.RunBatch(batch);
    ASSERT_EQ(outcomes.size(), std::size(kGolden));
    for (size_t i = 0; i < outcomes.size(); ++i) {
      ASSERT_TRUE(outcomes[i].status.ok()) << outcomes[i].status.ToString();
      ExpectMatchesGolden(outcomes[i].metrics, kGolden[i], RowName(kGolden[i]));
    }
  }
}

// The invariant auditor must be provably metrics-neutral: a checkpointed
// audit draws no RNG samples, sends no messages and records no hops, so
// audit_mode=checkpoints must reproduce the audit-off goldens above
// bit-for-bit — serially and at any parallel-runner job count.
TEST(SimDeterminismTest, CheckpointAuditingIsBitIdenticalToAuditOff) {
  std::vector<ExperimentConfig> batch;
  for (const GoldenRow& row : kGolden) {
    ExperimentConfig config = ConfigFor(row);
    config.audit_mode = audit::AuditMode::kCheckpoints;
    batch.push_back(config);
  }
  for (size_t jobs : {1u, 4u}) {
    ParallelRunner runner(jobs);
    const auto outcomes = runner.RunBatch(batch);
    ASSERT_EQ(outcomes.size(), std::size(kGolden));
    for (size_t i = 0; i < outcomes.size(); ++i) {
      SCOPED_TRACE("jobs=" + std::to_string(jobs));
      // A status failure here is an invariant violation: audit-clean runs
      // are part of the golden contract.
      ASSERT_TRUE(outcomes[i].status.ok()) << outcomes[i].status.ToString();
      ExpectMatchesGolden(outcomes[i].metrics, kGolden[i],
                          RowName(kGolden[i]));
    }
  }
}

TEST(SimDeterminismTest, RerunningIsBitIdentical) {
  // Same config twice in one process: no hidden global state (static RNGs,
  // pool carry-over) may leak between runs.
  const ExperimentConfig config = ConfigFor(kGolden[2]);  // dup/lossless
  auto first = SimulationDriver::Run(config);
  auto second = SimulationDriver::Run(config);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ExpectMatchesGolden(*second, kGolden[2], "second run");
  EXPECT_EQ(first->queries, second->queries);
  EXPECT_EQ(first->avg_cost_hops, second->avg_cost_hops);
}

}  // namespace
}  // namespace dupnet::experiment
