#include "core/node_registry.h"

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "gtest/gtest.h"
#include "util/rng.h"
#include "util/types.h"

namespace dupnet::core {
namespace {

TEST(NodeRegistryTest, AcquireAssignsDenseSlotsFromZero) {
  NodeRegistry registry;
  EXPECT_EQ(registry.Acquire(10), 0u);
  EXPECT_EQ(registry.Acquire(20), 1u);
  EXPECT_EQ(registry.Acquire(5), 2u);
  EXPECT_EQ(registry.live_count(), 3u);
  EXPECT_EQ(registry.slot_count(), 3u);
  EXPECT_TRUE(registry.Contains(10));
  EXPECT_FALSE(registry.Contains(11));
  EXPECT_EQ(registry.SlotOf(20), 1u);
  EXPECT_EQ(registry.OwnerOfSlot(2), 5u);
}

TEST(NodeRegistryTest, ReleaseRecyclesSlotLifo) {
  NodeRegistry registry;
  registry.Acquire(1);
  const uint32_t slot = registry.Acquire(2);
  registry.Acquire(3);
  registry.Release(2);
  EXPECT_FALSE(registry.Contains(2));
  EXPECT_EQ(registry.live_count(), 2u);
  // The freed slot is handed to the next newcomer; no new slot grows.
  EXPECT_EQ(registry.Acquire(4), slot);
  EXPECT_EQ(registry.slot_count(), 3u);
  EXPECT_EQ(registry.OwnerOfSlot(slot), 4u);
}

TEST(NodeRegistryTest, RawSlotSurvivesReleaseUntilRecycled) {
  NodeRegistry registry;
  const uint32_t slot = registry.Acquire(7);
  registry.Release(7);
  // Live lookup fails, but the raw mapping still points at the old slot
  // (how slabs erase/introspect a departed node's lingering state).
  EXPECT_EQ(registry.SlotOf(7), NodeRegistry::kNoSlot);
  EXPECT_EQ(registry.RawSlotOf(7), slot);
  // After recycling, the raw slot still resolves but its owner differs —
  // exactly the alias check slabs perform.
  registry.Acquire(8);
  EXPECT_EQ(registry.RawSlotOf(7), slot);
  EXPECT_NE(registry.OwnerOfSlot(slot), 7u);
}

TEST(NodeSlabTest, LingeringStateReadableUntilSlotReused) {
  NodeRegistry registry;
  NodeSlab<int> slab;
  registry.Acquire(3);
  slab.GetOrInit(registry, 3, [](int& v) { v = 33; }) = 42;
  registry.Release(3);
  // Departed but not erased: the state lingers (soft state outlives the
  // node; the audit layer's departed-state check reads exactly this).
  ASSERT_NE(slab.Find(registry, 3), nullptr);
  EXPECT_EQ(*slab.Find(registry, 3), 42);
  // A newcomer recycles the slot: the lingering entry is re-initialised
  // for the new owner and the dead id no longer resolves to it.
  registry.Acquire(9);
  bool reinit_ran = false;
  const int value = slab.GetOrInit(registry, 9, [&](int& v) {
    v = 99;
    reinit_ran = true;
  });
  EXPECT_TRUE(reinit_ran);
  EXPECT_EQ(value, 99);
  EXPECT_EQ(slab.Find(registry, 3), nullptr);
}

TEST(NodeSlabTest, EraseOfDepartedIdWorksThroughRawMapping) {
  NodeRegistry registry;
  NodeSlab<int> slab;
  registry.Acquire(5);
  slab.GetOrInit(registry, 5, [](int& v) { v = 5; });
  registry.Release(5);
  EXPECT_TRUE(slab.Erase(registry, 5));
  EXPECT_EQ(slab.Find(registry, 5), nullptr);
  EXPECT_FALSE(slab.Erase(registry, 5));  // Already gone.
}

// Churn-heavy property test: thousands of random acquire/release/erase
// rounds against a reference model. The pinned properties are the two the
// whole flat-state design rests on (docs/scaling.md):
//   * an id's slot is stable for its entire live span, and
//   * a recycled slot never aliases — a dead id can never observe (or
//     corrupt) the state of the node that inherited its slot, and a live
//     node always reads back exactly the value written for it.
TEST(NodeRegistryPropertyTest, ChurnNeverAliasesAndKeepsIdsStable) {
  util::Rng rng(20260808);
  NodeRegistry registry;
  NodeSlab<uint64_t> slab;

  NodeId next_id = 0;
  std::unordered_map<NodeId, uint32_t> live_slot;     // Model: live ids.
  std::unordered_map<NodeId, uint64_t> model_value;   // Model: slab content.
  std::unordered_set<NodeId> lingering;  // Released, state not erased.
  std::vector<NodeId> live_ids;
  size_t peak_live = 0;

  const auto value_for = [](NodeId id) {
    return static_cast<uint64_t>(id) * 2654435761u + 17u;
  };

  for (int round = 0; round < 20000; ++round) {
    const uint32_t dice = rng.UniformInt(0, 9);
    if (dice < 5 || live_ids.empty()) {
      // Join: fresh monotonic id, never reused.
      const NodeId id = next_id++;
      const uint32_t slot = registry.Acquire(id);
      // The newcomer's slot must not still resolve for any dead id.
      slab.GetOrInit(registry, id,
                     [&](uint64_t& v) { v = value_for(id); });
      live_slot[id] = slot;
      model_value[id] = value_for(id);
      live_ids.push_back(id);
      peak_live = std::max(peak_live, live_ids.size());
    } else if (dice < 8) {
      // Leave: release a random live id; half the time erase its state
      // immediately, otherwise leave it lingering (soft-state shape).
      const size_t pick = rng.UniformInt(0, live_ids.size() - 1);
      const NodeId id = live_ids[pick];
      live_ids[pick] = live_ids.back();
      live_ids.pop_back();
      registry.Release(id);
      live_slot.erase(id);
      if (rng.UniformInt(0, 1) == 0) {
        EXPECT_TRUE(slab.Erase(registry, id));
        model_value.erase(id);
      } else {
        lingering.insert(id);
      }
    } else {
      // Probe a random live id: slot stability + value round-trip.
      const NodeId id = live_ids[rng.UniformInt(0, live_ids.size() - 1)];
      ASSERT_EQ(registry.SlotOf(id), live_slot[id])
          << "slot moved for live id " << id;
      const uint64_t* value = slab.Find(registry, id);
      ASSERT_NE(value, nullptr);
      EXPECT_EQ(*value, model_value[id]);
    }

    // A dead id whose slot was recycled must never alias the new owner.
    if (!lingering.empty() && rng.UniformInt(0, 3) == 0) {
      const NodeId dead = *lingering.begin();
      EXPECT_FALSE(registry.Contains(dead));
      const uint32_t slot = registry.RawSlotOf(dead);
      ASSERT_NE(slot, NodeRegistry::kNoSlot);
      const NodeId owner = registry.OwnerOfSlot(slot);
      const uint64_t* value = slab.Find(registry, dead);
      if (owner != kInvalidNode) {
        // Slot recycled: the dead id's state is unreachable, the owner's
        // reads back its own value.
        EXPECT_EQ(value, nullptr);
        const uint64_t* owner_value = slab.Find(registry, owner);
        ASSERT_NE(owner_value, nullptr);
        EXPECT_EQ(*owner_value, model_value[owner]);
        lingering.erase(dead);
        model_value.erase(dead);
      } else if (value != nullptr) {
        // Slot never recycled since the release: state is intact.
        EXPECT_EQ(*value, model_value[dead]);
      } else {
        // The slot was recycled in the meantime (by an owner that has
        // since left too): the lingering state was legitimately
        // overwritten, never aliased.
        lingering.erase(dead);
        model_value.erase(dead);
      }
    }
  }

  EXPECT_EQ(registry.live_count(), live_ids.size());
  // Slots are recycled: the slab's footprint tracks peak concurrency, not
  // the total number of ids ever issued.
  EXPECT_LE(registry.slot_count(), peak_live);
  EXPECT_LT(registry.slot_count(), static_cast<size_t>(next_id));

  // Full sweep: every live id still reads its own value through ForEach.
  size_t visited_live = 0;
  slab.ForEach([&](NodeId id, const uint64_t& value) {
    if (registry.Contains(id)) {
      ++visited_live;
      EXPECT_EQ(value, value_for(id));
    }
  });
  EXPECT_EQ(visited_live, live_ids.size());
}

}  // namespace
}  // namespace dupnet::core
