#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/dup_protocol.h"
#include "test_util.h"
#include "topo/tree_generator.h"

namespace dupnet::core {
namespace {

using ::dupnet::testing::MakePaperTree;
using ::dupnet::testing::ProtocolHarness;
using proto::ProtocolOptions;

/// Reproduces the driver's removal sequence against a standalone protocol:
/// mark the node down, repair the tree, notify the protocol.
void RemoveNodeLikeDriver(ProtocolHarness* harness, DupProtocol* protocol,
                          NodeId node, bool graceful) {
  if (graceful) {
    protocol->OnGracefulLeave(node);
    harness->Drain();
  }
  const bool was_root = node == harness->tree().root();
  const NodeId former_parent =
      was_root ? kInvalidNode : harness->tree().Parent(node);
  const std::vector<NodeId> former_children = harness->tree().Children(node);
  ASSERT_TRUE(harness->tree().RemoveNode(node).ok());
  harness->network().SetNodeDown(node, true);
  protocol->OnNodeRemoved(node, former_parent, former_children, was_root,
                          harness->tree().root());
  harness->Drain();
  if (was_root) {
    // Driver semantics: the promoted authority refreshes the index and
    // restarts propagation (paper failure case 5).
    protocol->OnRootPublish(protocol->latest_version(),
                            protocol->latest_expiry());
    harness->Drain();
  }
}

class DupChurnTest : public ::testing::Test {
 protected:
  DupChurnTest() : harness_(MakePaperTree()) {
    protocol_ = std::make_unique<DupProtocol>(
        &harness_.network(), &harness_.tree(), ProtocolOptions());
    harness_.Attach(protocol_.get());
    protocol_->OnRootPublish(1, harness_.engine().Now() + 3600.0);
    harness_.Drain();
  }

  void Subscribe(NodeId node) {
    protocol_->ForceSubscribe(node);
    harness_.Drain();
  }

  void ExpectPushReaches(IndexVersion version,
                         const std::set<NodeId>& nodes) {
    protocol_->OnRootPublish(version,
                             harness_.engine().Now() + 3600.0);
    harness_.Drain();
    for (NodeId node : nodes) {
      EXPECT_EQ(protocol_->CacheOf(node).stored_version(), version)
          << "node " << node << " missed version " << version;
    }
  }

  ProtocolHarness harness_;
  std::unique_ptr<DupProtocol> protocol_;
};

// Paper failure case 1: the failed node is on no virtual path.
TEST_F(DupChurnTest, FailureOutsideVirtualPath) {
  Subscribe(6);
  RemoveNodeLikeDriver(&harness_, protocol_.get(), 4, /*graceful=*/false);
  EXPECT_TRUE(harness_.Audit().ok());
  ExpectPushReaches(2, {6});
}

// Paper failure case 2: the failed node is the last node of a virtual path.
TEST_F(DupChurnTest, FailureOfEndNodeClearsPath) {
  Subscribe(6);
  Subscribe(4);
  RemoveNodeLikeDriver(&harness_, protocol_.get(), 6, /*graceful=*/false);
  EXPECT_TRUE(harness_.Audit().ok());
  // Figure 2 (c): the root now pushes directly to N4.
  EXPECT_EQ(protocol_->SubscriberListOf(1).Get(2), std::optional<NodeId>(4));
  EXPECT_FALSE(protocol_->OnVirtualPath(5));
  ExpectPushReaches(2, {4});
}

// Paper failure case 3: the failed node is inside a virtual path.
TEST_F(DupChurnTest, FailureInsideVirtualPathReconnectsDownstream) {
  Subscribe(6);
  RemoveNodeLikeDriver(&harness_, protocol_.get(), 5, /*graceful=*/false);
  // N6 reparented under N3 and re-announced itself.
  EXPECT_EQ(harness_.tree().Parent(6), 3u);
  EXPECT_TRUE(harness_.Audit().ok());
  EXPECT_EQ(protocol_->SubscriberListOf(1).Get(2), std::optional<NodeId>(6));
  ExpectPushReaches(2, {6});
}

// Paper failure case 4: the failed node is a DUP-tree branch point.
TEST_F(DupChurnTest, FailureOfBranchPoint) {
  Subscribe(6);
  Subscribe(4);
  ASSERT_TRUE(protocol_->InDupTree(3));
  RemoveNodeLikeDriver(&harness_, protocol_.get(), 3, /*graceful=*/false);
  // N4 and N5's subtree reparent under N2; both branches re-announce and
  // N2 becomes the new branch point.
  EXPECT_TRUE(harness_.Audit().ok());
  EXPECT_TRUE(protocol_->InDupTree(2));
  ExpectPushReaches(2, {4, 6});
}

// Paper failure case 5: the root itself fails.
TEST_F(DupChurnTest, FailureOfRoot) {
  // Give the root a second branch with its own subscriber.
  ASSERT_TRUE(harness_.tree().AttachLeaf(1, 9).ok());
  Subscribe(6);
  Subscribe(9);
  RemoveNodeLikeDriver(&harness_, protocol_.get(), 1, /*graceful=*/false);
  EXPECT_EQ(harness_.tree().root(), 2u);
  EXPECT_TRUE(harness_.Audit().ok());
  ExpectPushReaches(2, {6, 9});
}

TEST_F(DupChurnTest, GracefulLeaveOfEndNodeSendsUnsubscribe) {
  Subscribe(6);
  const uint64_t control = harness_.recorder().hops().control();
  RemoveNodeLikeDriver(&harness_, protocol_.get(), 6, /*graceful=*/true);
  // The courtesy unsubscribe traveled before departure.
  EXPECT_GT(harness_.recorder().hops().control(), control);
  EXPECT_TRUE(harness_.Audit().ok());
  for (NodeId n : {1u, 2u, 3u, 5u}) {
    EXPECT_FALSE(protocol_->OnVirtualPath(n)) << "node " << n;
  }
}

TEST_F(DupChurnTest, GracefulLeaveOfVirtualPathMiddle) {
  Subscribe(6);
  RemoveNodeLikeDriver(&harness_, protocol_.get(), 5, /*graceful=*/true);
  EXPECT_TRUE(harness_.Audit().ok());
  ExpectPushReaches(2, {6});
}

TEST_F(DupChurnTest, SplitJoinInheritsSubscriberEntry) {
  Subscribe(6);
  // Paper Section III-C: N3' inserted between N3 and N5 inherits N3's
  // entry and becomes an intermediate virtual-path node.
  ASSERT_TRUE(harness_.tree().SplitEdge(3, 5, 35).ok());
  protocol_->OnSplitJoined(35, 3, 5);
  harness_.Drain();
  EXPECT_TRUE(protocol_->OnVirtualPath(35));
  EXPECT_EQ(protocol_->SubscriberListOf(35).Get(5), std::optional<NodeId>(6));
  EXPECT_EQ(protocol_->SubscriberListOf(3).Get(35), std::optional<NodeId>(6));
  EXPECT_TRUE(harness_.Audit().ok());
  ExpectPushReaches(2, {6});
}

TEST_F(DupChurnTest, SplitJoinOutsideVirtualPathIsInert) {
  Subscribe(6);
  ASSERT_TRUE(harness_.tree().SplitEdge(6, 8, 68).ok());
  protocol_->OnSplitJoined(68, 6, 8);
  harness_.Drain();
  EXPECT_FALSE(protocol_->OnVirtualPath(68));
  EXPECT_TRUE(harness_.Audit().ok());
}

TEST_F(DupChurnTest, LeafJoinThenSubscribe) {
  ASSERT_TRUE(harness_.tree().AttachLeaf(7, 70).ok());
  protocol_->OnLeafJoined(70, 7);
  Subscribe(70);
  EXPECT_TRUE(harness_.Audit().ok());
  ExpectPushReaches(2, {70});
}

TEST_F(DupChurnTest, SequentialFailuresStayConsistent) {
  Subscribe(6);
  Subscribe(4);
  Subscribe(8);
  RemoveNodeLikeDriver(&harness_, protocol_.get(), 5, false);
  EXPECT_TRUE(harness_.Audit().ok());
  RemoveNodeLikeDriver(&harness_, protocol_.get(), 6, false);
  EXPECT_TRUE(harness_.Audit().ok());
  RemoveNodeLikeDriver(&harness_, protocol_.get(), 3, false);
  EXPECT_TRUE(harness_.Audit().ok());
  // N8 was reparented twice; N4 once. Both still receive updates.
  ExpectPushReaches(2, {4, 8});
}

// Regression: a subscribe in flight across an edge split. N6 subscribes;
// after the announcement has been relayed by N5 but before it reaches N3,
// N3' (35) splits the 3-5 edge. The stale message arrives at N3 from a
// node that is no longer its child; N3 must re-route it to N5's new parent
// instead of recording a subscriber entry under the bogus branch key 5.
TEST_F(DupChurnTest, SubscribeInFlightAcrossEdgeSplitIsRerouted) {
  protocol_->ForceSubscribe(6);
  // One step delivers 6's announcement at N5, which relays it toward N3.
  harness_.engine().Step();
  ASSERT_EQ(protocol_->SubscriberListOf(5).Get(6), std::optional<NodeId>(6));
  ASSERT_GT(harness_.network().in_flight_count(), 0u);

  ASSERT_TRUE(harness_.tree().SplitEdge(3, 5, 35).ok());
  protocol_->OnSplitJoined(35, 3, 5);
  harness_.Drain();

  // The re-routed announcement built the virtual path through N3', and no
  // node holds an entry keyed by a non-child (the pre-fix corruption).
  EXPECT_EQ(protocol_->SubscriberListOf(35).Get(5), std::optional<NodeId>(6));
  EXPECT_EQ(protocol_->SubscriberListOf(3).Get(35), std::optional<NodeId>(6));
  EXPECT_TRUE(harness_.Audit().ok());
  ExpectPushReaches(2, {6});
}

// Regression: an in-flight substitute racing the unsubscribe that collapses
// its branch point. Subscribing N7 and N8 makes N6 a branch point, which
// announces substitute(rep -> 6) upstream; unsubscribing both without
// draining lets that substitute interleave with the unsubscribes that drop
// N6 back below branch-point arity. After quiescence no stale upstream
// entry may survive (the ISSUE's prime suspect).
TEST_F(DupChurnTest, SubstituteRacingUnsubscribeAtCollapsingBranchPoint) {
  Subscribe(7);
  Subscribe(8);
  ASSERT_TRUE(protocol_->InDupTree(6));  // Branch point for {7, 8}.
  protocol_->ForceUnsubscribe(7);
  protocol_->ForceUnsubscribe(8);  // No drain: control traffic interleaves.
  harness_.Drain();
  const auto audit = harness_.Audit();
  EXPECT_TRUE(audit.ok()) << audit.ToString();
  for (NodeId n : {1u, 2u, 3u, 5u, 6u}) {
    EXPECT_FALSE(protocol_->OnVirtualPath(n)) << "node " << n;
  }
}

// ---------------------------------------------------------------------------
// Message loss and repair (docs/fault-injection.md).
// ---------------------------------------------------------------------------

// A lost substitute leaves the upstream pusher pointing at the old
// representative; the soft-state refresh re-announces representatives and
// reconverges the DUP tree.
TEST_F(DupChurnTest, DroppedSubstituteRepairedBySoftStateRefresh) {
  Subscribe(6);
  // Subscribing N4 turns N3 into a branch point, which announces
  // substitute(6 -> 3) to N2. Drop exactly that message.
  bool dropped = false;
  harness_.network().set_loss_filter([&dropped](const net::Message& m) {
    if (m.type != net::MessageType::kSubstitute || dropped) return false;
    dropped = true;
    return true;
  });
  Subscribe(4);
  ASSERT_TRUE(dropped);
  // Upstream still routes the branch through the stale representative N6.
  EXPECT_FALSE(harness_.Audit().ok());

  harness_.network().set_loss_filter(nullptr);
  protocol_->OnSoftStateRefresh();
  harness_.Drain();
  EXPECT_TRUE(harness_.Audit().ok());
  ExpectPushReaches(2, {4, 6});
}

// With the ack/retry machinery armed the same loss heals by itself: the
// unacked substitute is retransmitted before any refresh runs.
TEST_F(DupChurnTest, DroppedSubstituteRecoveredByRetry) {
  net::FaultConfig faults;
  faults.retry_max = 3;
  faults.retry_timeout = 1.0;
  harness_.network().set_faults(faults);
  Subscribe(6);
  bool dropped = false;
  harness_.network().set_loss_filter([&dropped](const net::Message& m) {
    if (m.type != net::MessageType::kSubstitute || dropped) return false;
    dropped = true;
    return true;
  });
  Subscribe(4);  // Drain runs the retry timer: the retransmission lands.
  ASSERT_TRUE(dropped);
  EXPECT_TRUE(harness_.Audit().ok());
  EXPECT_EQ(
      harness_.recorder().delivery().retries_for(metrics::HopClass::kControl),
      1u);
  ExpectPushReaches(2, {4, 6});
}

// Property test: random subscribe/unsubscribe/churn sequences leave the
// propagation state consistent and every interested node reachable.
class DupChurnPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DupChurnPropertyTest, RandomOperationsPreserveInvariants) {
  util::Rng rng(GetParam());
  topo::TreeGeneratorOptions gen;
  gen.num_nodes = 40;
  gen.max_degree = 3;
  auto tree = topo::TreeGenerator::Generate(gen, &rng);
  ASSERT_TRUE(tree.ok());

  ProtocolHarness harness(std::move(*tree), /*seed=*/GetParam() + 1);
  DupProtocol protocol(&harness.network(), &harness.tree(),
                       ProtocolOptions());
  harness.Attach(&protocol);
  protocol.OnRootPublish(1, harness.engine().Now() + 3600.0);

  std::vector<NodeId> live = harness.tree().NodesPreOrder();
  NodeId fresh = 1000;
  IndexVersion version = 1;

  for (int step = 0; step < 200; ++step) {
    const uint64_t op = rng.UniformInt(0, 5);
    const NodeId target =
        live[static_cast<size_t>(rng.UniformInt(0, live.size() - 1))];
    switch (op) {
      case 0:
      case 1:
        protocol.ForceSubscribe(target);
        break;
      case 2:
        protocol.ForceUnsubscribe(target);
        break;
      case 3: {  // Leaf join.
        ASSERT_TRUE(harness.tree().AttachLeaf(target, fresh).ok());
        protocol.OnLeafJoined(fresh, target);
        live.push_back(fresh++);
        break;
      }
      case 4: {  // Edge-split join.
        const auto& children = harness.tree().Children(target);
        if (children.empty()) break;
        const NodeId child = children[static_cast<size_t>(
            rng.UniformInt(0, children.size() - 1))];
        ASSERT_TRUE(harness.tree().SplitEdge(target, child, fresh).ok());
        protocol.OnSplitJoined(fresh, target, child);
        live.push_back(fresh++);
        break;
      }
      case 5: {  // Failure or graceful leave.
        if (live.size() <= 3) break;
        const bool graceful = rng.Bernoulli(0.5);
        if (target == harness.tree().root() && graceful) break;
        if (graceful) protocol.OnGracefulLeave(target);
        harness.Drain();
        const bool was_root = target == harness.tree().root();
        const NodeId parent =
            was_root ? kInvalidNode : harness.tree().Parent(target);
        const std::vector<NodeId> orphans = harness.tree().Children(target);
        ASSERT_TRUE(harness.tree().RemoveNode(target).ok());
        harness.network().SetNodeDown(target, true);
        protocol.OnNodeRemoved(target, parent, orphans, was_root,
                               harness.tree().root());
        live.erase(std::find(live.begin(), live.end(), target));
        if (was_root) {
          harness.Drain();
          protocol.OnRootPublish(protocol.latest_version(),
                                 protocol.latest_expiry());
        }
        break;
      }
    }
    harness.Drain();
    ASSERT_TRUE(harness.tree().Validate().ok()) << "step " << step;
    const auto audit = harness.Audit();
    ASSERT_TRUE(audit.ok()) << "step " << step << ": " << audit.ToString();

    if (step % 20 == 19) {
      protocol.OnRootPublish(++version, harness.engine().Now() + 3600.0);
      harness.Drain();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DupChurnPropertyTest,
                         ::testing::Range(uint64_t{1}, uint64_t{13}));

// Harsher variant: subscription churn WITHOUT draining between operations,
// so subscribe/unsubscribe/substitute messages interleave arbitrarily in
// flight (per-pair FIFO is the only ordering guarantee, as in the real
// network). After quiescence the propagation state must still be globally
// consistent.
class DupConcurrencyPropertyTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(DupConcurrencyPropertyTest, InterleavedSubscriptionsConverge) {
  util::Rng rng(GetParam());
  topo::TreeGeneratorOptions gen;
  gen.num_nodes = 60;
  gen.max_degree = 4;
  auto tree = topo::TreeGenerator::Generate(gen, &rng);
  ASSERT_TRUE(tree.ok());

  ProtocolHarness harness(std::move(*tree), GetParam() + 77);
  DupProtocol protocol(&harness.network(), &harness.tree(),
                       proto::ProtocolOptions());
  harness.Attach(&protocol);
  protocol.OnRootPublish(1, harness.engine().Now() + 3600.0);

  const std::vector<NodeId> nodes = harness.tree().NodesPreOrder();
  for (int round = 0; round < 10; ++round) {
    // A burst of interleaved operations, no draining.
    for (int op = 0; op < 40; ++op) {
      const NodeId target =
          nodes[static_cast<size_t>(rng.UniformInt(0, nodes.size() - 1))];
      if (rng.Bernoulli(0.6)) {
        protocol.ForceSubscribe(target);
      } else {
        protocol.ForceUnsubscribe(target);
      }
      // Let a random slice of in-flight traffic proceed, interleaving
      // deliveries with new operations.
      for (int step = 0; step < 3; ++step) harness.engine().Step();
    }
    harness.Drain();
    const auto audit = harness.Audit();
    ASSERT_TRUE(audit.ok())
        << "round " << round << ": " << audit.ToString();

    // And a publish must reach every currently subscribed node.
    protocol.OnRootPublish(static_cast<IndexVersion>(round + 2),
                           harness.engine().Now() + 3600.0);
    harness.Drain();
    for (NodeId node : nodes) {
      if (node == harness.tree().root()) continue;
      if (protocol.SubscriberListOf(node).HasSelf()) {
        EXPECT_EQ(protocol.CacheOf(node).stored_version(),
                  static_cast<IndexVersion>(round + 2))
            << "round " << round << " node " << node;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DupConcurrencyPropertyTest,
                         ::testing::Range(uint64_t{100}, uint64_t{120}));

}  // namespace
}  // namespace dupnet::core
