#include "topo/churn.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "topo/tree_generator.h"

namespace dupnet::topo {
namespace {

std::vector<NodeId> LiveNodes(const IndexSearchTree& tree) {
  return tree.NodesPreOrder();
}

TEST(ChurnConfigTest, EnabledOnlyWithPositiveRates) {
  ChurnConfig config;
  EXPECT_FALSE(config.enabled());
  config.join_rate = 0.5;
  EXPECT_TRUE(config.enabled());
  EXPECT_DOUBLE_EQ(config.total_rate(), 0.5);
}

TEST(ChurnPlannerTest, IntervalIsExponentialWithTotalRate) {
  ChurnConfig config;
  config.join_rate = 1.0;
  config.fail_rate = 1.0;
  ChurnPlanner planner(config);
  util::Rng rng(3);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += planner.NextInterval(&rng);
  EXPECT_NEAR(sum / n, 0.5, 0.02);  // Mean 1/(join+fail).
}

TEST(ChurnPlannerTest, JoinOnlyProducesJoins) {
  ChurnConfig config;
  config.join_rate = 1.0;
  ChurnPlanner planner(config);
  util::Rng rng(5);
  IndexSearchTree tree = dupnet::testing::MakePaperTree();
  const auto live = LiveNodes(tree);
  for (int i = 0; i < 50; ++i) {
    auto action = planner.Plan(tree, live, /*fresh_id=*/100, &rng);
    ASSERT_TRUE(action.ok());
    EXPECT_TRUE(action->kind == ChurnAction::Kind::kJoinLeaf ||
                action->kind == ChurnAction::Kind::kJoinSplit);
    EXPECT_EQ(action->subject, 100u);
    EXPECT_TRUE(tree.Contains(action->parent));
    if (action->kind == ChurnAction::Kind::kJoinSplit) {
      EXPECT_EQ(tree.Parent(action->child), action->parent);
    }
  }
}

TEST(ChurnPlannerTest, MinNodesBlocksDepartures) {
  ChurnConfig config;
  config.leave_rate = 1.0;
  config.min_nodes = 8;  // Exactly the paper tree's size.
  ChurnPlanner planner(config);
  util::Rng rng(7);
  IndexSearchTree tree = dupnet::testing::MakePaperTree();
  auto action = planner.Plan(tree, LiveNodes(tree), 100, &rng);
  EXPECT_TRUE(action.status().IsFailedPrecondition());
}

TEST(ChurnPlannerTest, LeaveNeverPicksRoot) {
  ChurnConfig config;
  config.leave_rate = 1.0;
  ChurnPlanner planner(config);
  util::Rng rng(11);
  IndexSearchTree tree = dupnet::testing::MakePaperTree();
  const auto live = LiveNodes(tree);
  for (int i = 0; i < 200; ++i) {
    auto action = planner.Plan(tree, live, 100, &rng);
    ASSERT_TRUE(action.ok());
    EXPECT_EQ(action->kind, ChurnAction::Kind::kLeave);
    EXPECT_NE(action->subject, tree.root());
  }
}

TEST(ChurnPlannerTest, RootFailureRequiresOptIn) {
  ChurnConfig config;
  config.fail_rate = 1.0;
  config.allow_root_failure = false;
  ChurnPlanner planner(config);
  util::Rng rng(13);
  IndexSearchTree tree = dupnet::testing::MakePaperTree();
  const auto live = LiveNodes(tree);
  for (int i = 0; i < 200; ++i) {
    auto action = planner.Plan(tree, live, 100, &rng);
    ASSERT_TRUE(action.ok());
    EXPECT_NE(action->subject, tree.root());
  }
}

TEST(ChurnPlannerTest, RootFailurePossibleWhenAllowed) {
  ChurnConfig config;
  config.fail_rate = 1.0;
  config.allow_root_failure = true;
  ChurnPlanner planner(config);
  util::Rng rng(17);
  IndexSearchTree tree = dupnet::testing::MakePaperTree();
  const auto live = LiveNodes(tree);
  bool hit_root = false;
  for (int i = 0; i < 500 && !hit_root; ++i) {
    auto action = planner.Plan(tree, live, 100, &rng);
    ASSERT_TRUE(action.ok());
    hit_root = action->subject == tree.root();
  }
  EXPECT_TRUE(hit_root);
}

class ChurnActionSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChurnActionSweep, PlannedActionsAreAlwaysApplicable) {
  ChurnConfig config;
  config.join_rate = 1.0;
  config.leave_rate = 1.0;
  config.fail_rate = 1.0;
  ChurnPlanner planner(config);
  util::Rng rng(GetParam());

  TreeGeneratorOptions gen;
  gen.num_nodes = 50;
  auto tree = TreeGenerator::Generate(gen, &rng);
  ASSERT_TRUE(tree.ok());
  NodeId fresh = 1000;
  for (int i = 0; i < 300; ++i) {
    const auto live = LiveNodes(*tree);
    auto action = planner.Plan(*tree, live, fresh, &rng);
    if (!action.ok()) continue;
    switch (action->kind) {
      case ChurnAction::Kind::kJoinLeaf:
        ASSERT_TRUE(tree->AttachLeaf(action->parent, action->subject).ok());
        ++fresh;
        break;
      case ChurnAction::Kind::kJoinSplit:
        ASSERT_TRUE(
            tree->SplitEdge(action->parent, action->child, action->subject)
                .ok());
        ++fresh;
        break;
      case ChurnAction::Kind::kLeave:
      case ChurnAction::Kind::kFail:
        ASSERT_TRUE(tree->RemoveNode(action->subject).ok());
        break;
    }
    ASSERT_TRUE(tree->Validate().ok()) << "after step " << i;
    ASSERT_GE(tree->size(), config.min_nodes);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnActionSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace dupnet::topo
