#include "pubsub/hub.h"

#include <map>
#include <set>

#include <gtest/gtest.h>

namespace dupnet::pubsub {
namespace {

class HubTest : public ::testing::Test {
 protected:
  HubTest() : rng_(3) {
    DisseminationHub::Options options;
    options.num_nodes = 64;
    auto hub = DisseminationHub::Create(&engine_, &rng_, options);
    hub_ = std::move(hub.value());
  }

  sim::Engine engine_;
  util::Rng rng_;
  std::unique_ptr<DisseminationHub> hub_;
};

TEST_F(HubTest, CreateTopicOnce) {
  EXPECT_TRUE(hub_->CreateTopic("news").ok());
  EXPECT_TRUE(hub_->CreateTopic("news").IsAlreadyExists());
  EXPECT_EQ(hub_->topics(), std::vector<std::string>{"news"});
}

TEST_F(HubTest, UnknownTopicErrors) {
  EXPECT_TRUE(hub_->Subscribe("ghost", 1).IsNotFound());
  EXPECT_TRUE(hub_->Unsubscribe("ghost", 1).IsNotFound());
  EXPECT_TRUE(hub_->Publish("ghost").IsNotFound());
  EXPECT_TRUE(hub_->AuthorityOf("ghost").status().IsNotFound());
  EXPECT_TRUE(hub_->VersionOf("ghost").status().IsNotFound());
}

TEST_F(HubTest, SubscribeRejectsUnknownNode) {
  ASSERT_TRUE(hub_->CreateTopic("news").ok());
  EXPECT_TRUE(hub_->Subscribe("news", 9999).IsNotFound());
}

TEST_F(HubTest, PublishDeliversToSubscribers) {
  ASSERT_TRUE(hub_->CreateTopic("news").ok());
  std::set<NodeId> delivered;
  hub_->set_delivery_callback(
      [&](const std::string& topic, NodeId node, IndexVersion version) {
        EXPECT_EQ(topic, "news");
        EXPECT_EQ(version, 1u);
        delivered.insert(node);
      });
  const NodeId authority = hub_->AuthorityOf("news").value();
  std::set<NodeId> subscribers;
  for (NodeId n = 0; n < 10; ++n) {
    if (n == authority) continue;
    ASSERT_TRUE(hub_->Subscribe("news", n).ok());
    subscribers.insert(n);
  }
  engine_.Run();
  ASSERT_TRUE(hub_->Publish("news").ok());
  engine_.Run();
  for (NodeId n : subscribers) {
    EXPECT_TRUE(delivered.count(n)) << "node " << n << " missed delivery";
  }
  EXPECT_EQ(hub_->VersionOf("news").value(), 1u);
}

TEST_F(HubTest, UnsubscribedNodeStopsReceiving) {
  ASSERT_TRUE(hub_->CreateTopic("news").ok());
  const NodeId authority = hub_->AuthorityOf("news").value();
  const NodeId node = authority == 5 ? 6 : 5;
  ASSERT_TRUE(hub_->Subscribe("news", node).ok());
  engine_.Run();
  std::map<IndexVersion, int> deliveries;
  hub_->set_delivery_callback(
      [&](const std::string&, NodeId n, IndexVersion version) {
        if (n == node) ++deliveries[version];
      });
  ASSERT_TRUE(hub_->Publish("news").ok());
  engine_.Run();
  EXPECT_EQ(deliveries[1], 1);
  ASSERT_TRUE(hub_->Unsubscribe("news", node).ok());
  engine_.Run();
  ASSERT_TRUE(hub_->Publish("news").ok());
  engine_.Run();
  EXPECT_EQ(deliveries[2], 0);
}

TEST_F(HubTest, TopicsAreIndependent) {
  ASSERT_TRUE(hub_->CreateTopic("a").ok());
  ASSERT_TRUE(hub_->CreateTopic("b").ok());
  const NodeId authority_a = hub_->AuthorityOf("a").value();
  const NodeId node = authority_a == 3 ? 4 : 3;
  ASSERT_TRUE(hub_->Subscribe("a", node).ok());
  engine_.Run();
  std::map<std::string, int> deliveries;
  hub_->set_delivery_callback(
      [&](const std::string& topic, NodeId n, IndexVersion) {
        if (n == node) ++deliveries[topic];
      });
  ASSERT_TRUE(hub_->Publish("a").ok());
  ASSERT_TRUE(hub_->Publish("b").ok());
  engine_.Run();
  EXPECT_EQ(deliveries["a"], 1);
  EXPECT_EQ(deliveries["b"], 0);
}

TEST_F(HubTest, DifferentTopicsUsuallyDifferentAuthorities) {
  std::set<NodeId> authorities;
  for (int i = 0; i < 8; ++i) {
    const std::string topic = "topic-" + std::to_string(i);
    ASSERT_TRUE(hub_->CreateTopic(topic).ok());
    authorities.insert(hub_->AuthorityOf(topic).value());
  }
  EXPECT_GT(authorities.size(), 3u);
}

TEST_F(HubTest, VersionsIncrement) {
  ASSERT_TRUE(hub_->CreateTopic("v").ok());
  EXPECT_EQ(hub_->VersionOf("v").value(), 0u);
  ASSERT_TRUE(hub_->Publish("v").ok());
  ASSERT_TRUE(hub_->Publish("v").ok());
  engine_.Run();
  EXPECT_EQ(hub_->VersionOf("v").value(), 2u);
}

TEST_F(HubTest, ProtocolOfExposesDupTree) {
  ASSERT_TRUE(hub_->CreateTopic("t").ok());
  auto protocol = hub_->ProtocolOf("t");
  ASSERT_TRUE(protocol.ok());
  const NodeId authority = hub_->AuthorityOf("t").value();
  const NodeId node = authority == 1 ? 2 : 1;
  ASSERT_TRUE(hub_->Subscribe("t", node).ok());
  engine_.Run();
  EXPECT_TRUE((*protocol)->InDupTree(node));
  EXPECT_TRUE(hub_->AuditTopic("t").ok());
  EXPECT_TRUE(hub_->AuditTopic("ghost").IsNotFound());
  EXPECT_TRUE(hub_->ProtocolOf("ghost").status().IsNotFound());
}

TEST_F(HubTest, RecorderAggregatesAcrossTopics) {
  ASSERT_TRUE(hub_->CreateTopic("x").ok());
  const NodeId authority = hub_->AuthorityOf("x").value();
  ASSERT_TRUE(hub_->Subscribe("x", authority == 0 ? 1 : 0).ok());
  engine_.Run();
  ASSERT_TRUE(hub_->Publish("x").ok());
  engine_.Run();
  EXPECT_GT(hub_->recorder().hops().push(), 0u);
  EXPECT_GT(hub_->recorder().hops().control(), 0u);
}

}  // namespace
}  // namespace dupnet::pubsub
