#include "multikey/simulation.h"

#include <gtest/gtest.h>

namespace dupnet::multikey {
namespace {

MultiKeyConfig SmallConfig() {
  MultiKeyConfig config;
  config.num_nodes = 128;
  config.num_keys = 8;
  config.lambda = 10.0;
  config.ttl = 600.0;
  config.push_lead = 30.0;
  config.warmup_time = 600.0;
  config.measure_time = 1800.0;
  config.seed = 3;
  return config;
}

TEST(MultiKeyConfigTest, DefaultsValid) {
  EXPECT_TRUE(MultiKeyConfig().Validate().ok());
}

TEST(MultiKeyConfigTest, Rejections) {
  MultiKeyConfig config;
  config.num_nodes = 1;
  EXPECT_FALSE(config.Validate().ok());
  config = MultiKeyConfig();
  config.num_keys = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = MultiKeyConfig();
  config.lambda = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = MultiKeyConfig();
  config.push_lead = config.ttl;
  EXPECT_FALSE(config.Validate().ok());
  config = MultiKeyConfig();
  config.shards = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = MultiKeyConfig();
  config.shards = config.num_keys + 1;
  EXPECT_FALSE(config.Validate().ok());
  config = MultiKeyConfig();
  config.faults.loss_rate = 1.5;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(MultiKeyTest, RunsAndReportsPerKeyStats) {
  auto result = MultiKeySimulation::Run(SmallConfig());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->keys.size(), 8u);
  EXPECT_GT(result->aggregate.queries, 1000u);
  uint64_t per_key_total = 0;
  for (const KeyStats& key : result->keys) {
    EXPECT_NE(key.authority, kInvalidNode);
    per_key_total += key.metrics.queries;
  }
  EXPECT_EQ(per_key_total, result->aggregate.queries);
}

TEST(MultiKeyTest, KeyPopularityIsSkewed) {
  MultiKeyConfig config = SmallConfig();
  config.key_zipf_theta = 1.5;
  auto result = MultiKeySimulation::Run(config);
  ASSERT_TRUE(result.ok());
  // Rank-0 key must receive more queries than the coldest key.
  EXPECT_GT(result->keys.front().metrics.queries,
            2 * result->keys.back().metrics.queries);
}

TEST(MultiKeyTest, UniformKeysWhenThetaZero) {
  MultiKeyConfig config = SmallConfig();
  config.key_zipf_theta = 0.0;
  auto result = MultiKeySimulation::Run(config);
  ASSERT_TRUE(result.ok());
  const double expected = static_cast<double>(result->aggregate.queries) /
                          static_cast<double>(config.num_keys);
  for (const KeyStats& key : result->keys) {
    EXPECT_NEAR(static_cast<double>(key.metrics.queries), expected,
                expected * 0.25)
        << key.key_name;
  }
}

TEST(MultiKeyTest, AuthoritiesSpreadAcrossNodes) {
  MultiKeyConfig config = SmallConfig();
  config.num_keys = 32;
  auto result = MultiKeySimulation::Run(config);
  ASSERT_TRUE(result.ok());
  // Hashing 32 keys over 128 nodes: authorities should be well spread.
  EXPECT_GT(result->distinct_authorities, 16u);
  EXPECT_LE(result->max_keys_per_authority, 5u);
}

TEST(MultiKeyTest, AllSchemesRun) {
  for (experiment::Scheme scheme :
       {experiment::Scheme::kPcx, experiment::Scheme::kCup,
        experiment::Scheme::kDup}) {
    MultiKeyConfig config = SmallConfig();
    config.scheme = scheme;
    auto result = MultiKeySimulation::Run(config);
    ASSERT_TRUE(result.ok()) << experiment::SchemeToString(scheme);
    EXPECT_GT(result->aggregate.queries, 0u);
  }
}

TEST(MultiKeyTest, DupBeatsPcxInAggregate) {
  MultiKeyConfig pcx_config = SmallConfig();
  pcx_config.scheme = experiment::Scheme::kPcx;
  MultiKeyConfig dup_config = SmallConfig();
  dup_config.scheme = experiment::Scheme::kDup;
  auto pcx = MultiKeySimulation::Run(pcx_config);
  auto dup = MultiKeySimulation::Run(dup_config);
  ASSERT_TRUE(pcx.ok());
  ASSERT_TRUE(dup.ok());
  EXPECT_LT(dup->aggregate.avg_latency_hops, pcx->aggregate.avg_latency_hops);
  EXPECT_LT(dup->aggregate.avg_cost_hops, pcx->aggregate.avg_cost_hops);
}

TEST(MultiKeyTest, DeterministicForSeed) {
  auto a = MultiKeySimulation::Run(SmallConfig());
  auto b = MultiKeySimulation::Run(SmallConfig());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->aggregate.queries, b->aggregate.queries);
  EXPECT_DOUBLE_EQ(a->aggregate.avg_cost_hops, b->aggregate.avg_cost_hops);
}

TEST(MultiKeyTest, HorizonBoundaryPublishIsExcluded) {
  // period = ttl - push_lead = 500; with a 1000s horizon, publishes land at
  // t = 0 and t = 500. The next one falls exactly ON the horizon and must
  // not fire: scheduling is strictly-before-horizon on both the publish and
  // the query path (the old <=/>= mismatch scheduled it, and RunUntil
  // processes events at exactly the end time).
  MultiKeyConfig config;
  config.num_nodes = 16;
  config.num_keys = 1;
  config.lambda = 1.0;
  config.ttl = 600.0;
  config.push_lead = 100.0;
  config.warmup_time = 0.0;
  config.measure_time = 1000.0;
  config.seed = 7;
  auto result = MultiKeySimulation::Run(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->keys[0].publishes, 2u);
}

// --- Shard determinism: the PR's load-bearing invariant. -------------------
//
// Each key's event stream is derived only from (seed, key index): its own
// RNG, arrival process, node selector, network and protocol. Shards merely
// group keys onto engines, so ANY shard count must produce bit-identical
// merged metrics. These tests pin shards ∈ {1, 2, 4} across all schemes and
// lossless/lossy networks.

void ExpectBitIdentical(const MultiKeyResult& a, const MultiKeyResult& b) {
  const metrics::RunMetrics& ma = a.aggregate;
  const metrics::RunMetrics& mb = b.aggregate;
  EXPECT_EQ(ma.queries, mb.queries);
  EXPECT_EQ(ma.queries_issued, mb.queries_issued);
  EXPECT_EQ(ma.local_hits, mb.local_hits);
  EXPECT_EQ(ma.stale_serves, mb.stale_serves);
  // EXPECT_EQ on doubles is exact equality — bit-identity, not tolerance.
  EXPECT_EQ(ma.avg_latency_hops, mb.avg_latency_hops);
  EXPECT_EQ(ma.avg_cost_hops, mb.avg_cost_hops);
  EXPECT_EQ(ma.local_hit_rate, mb.local_hit_rate);
  EXPECT_EQ(ma.stale_rate, mb.stale_rate);
  EXPECT_EQ(ma.delivery_ratio, mb.delivery_ratio);
  for (int c = 0; c < metrics::kNumHopClasses; ++c) {
    EXPECT_EQ(ma.hops.counts[c], mb.hops.counts[c]);
    EXPECT_EQ(ma.delivery.sent[c], mb.delivery.sent[c]);
    EXPECT_EQ(ma.delivery.delivered[c], mb.delivery.delivered[c]);
    EXPECT_EQ(ma.delivery.dropped[c], mb.delivery.dropped[c]);
    EXPECT_EQ(ma.delivery.retries[c], mb.delivery.retries[c]);
    EXPECT_EQ(ma.delivery.giveups[c], mb.delivery.giveups[c]);
  }
  EXPECT_EQ(ma.latency_p50, mb.latency_p50);
  EXPECT_EQ(ma.latency_p95, mb.latency_p95);
  EXPECT_EQ(ma.latency_p99, mb.latency_p99);
  EXPECT_EQ(ma.latency_max, mb.latency_max);
  ASSERT_EQ(ma.latency_hist.max_tracked(), mb.latency_hist.max_tracked());
  EXPECT_EQ(ma.latency_hist.count(), mb.latency_hist.count());
  EXPECT_EQ(ma.latency_hist.overflow_count(), mb.latency_hist.overflow_count());
  for (uint64_t v = 0; v <= ma.latency_hist.max_tracked(); ++v) {
    EXPECT_EQ(ma.latency_hist.CountAt(v), mb.latency_hist.CountAt(v))
        << "latency bucket " << v;
  }
  EXPECT_EQ(ma.latency_stats.count(), mb.latency_stats.count());
  if (ma.latency_stats.count() > 0) {
    EXPECT_EQ(ma.latency_stats.Mean(), mb.latency_stats.Mean());
    EXPECT_EQ(ma.latency_stats.Min(), mb.latency_stats.Min());
    EXPECT_EQ(ma.latency_stats.Max(), mb.latency_stats.Max());
  }
  // Per-key streams, not just the fold: every key saw the same history.
  ASSERT_EQ(a.keys.size(), b.keys.size());
  for (size_t k = 0; k < a.keys.size(); ++k) {
    EXPECT_EQ(a.keys[k].authority, b.keys[k].authority) << "key " << k;
    EXPECT_EQ(a.keys[k].publishes, b.keys[k].publishes) << "key " << k;
    EXPECT_EQ(a.keys[k].metrics.queries, b.keys[k].metrics.queries)
        << "key " << k;
    EXPECT_EQ(a.keys[k].metrics.avg_latency_hops,
              b.keys[k].metrics.avg_latency_hops)
        << "key " << k;
    EXPECT_EQ(a.keys[k].metrics.hops.total(), b.keys[k].metrics.hops.total())
        << "key " << k;
  }
  // The union of per-shard engines processes exactly the same event set.
  EXPECT_EQ(a.events_processed, b.events_processed);
}

class MultiKeyShardTest
    : public ::testing::TestWithParam<experiment::Scheme> {};

TEST_P(MultiKeyShardTest, ShardCountIsMetricsInvariantLossless) {
  MultiKeyConfig config = SmallConfig();
  config.scheme = GetParam();
  auto reference = MultiKeySimulation::Run(config);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  EXPECT_EQ(reference->shards, 1u);
  EXPECT_GT(reference->aggregate.queries, 0u);
  for (size_t shards : {2u, 4u}) {
    MultiKeyConfig sharded = config;
    sharded.shards = shards;
    auto result = MultiKeySimulation::Run(sharded);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->shards, shards);
    SCOPED_TRACE(::testing::Message() << "shards=" << shards);
    ExpectBitIdentical(*reference, *result);
  }
}

TEST_P(MultiKeyShardTest, ShardCountIsMetricsInvariantLossy) {
  MultiKeyConfig config = SmallConfig();
  config.scheme = GetParam();
  config.faults.loss_rate = 0.05;
  config.faults.jitter = 0.02;
  config.faults.retry_max = 2;
  auto reference = MultiKeySimulation::Run(config);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  EXPECT_GT(reference->aggregate.delivery.total_dropped(), 0u);
  for (size_t shards : {2u, 4u}) {
    MultiKeyConfig sharded = config;
    sharded.shards = shards;
    auto result = MultiKeySimulation::Run(sharded);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    SCOPED_TRACE(::testing::Message() << "shards=" << shards);
    ExpectBitIdentical(*reference, *result);
  }
}

TEST_P(MultiKeyShardTest, MultiThreadedShardsMatchSingleThreaded) {
  // Same shard count, different worker counts: completion order must not
  // leak into any metric (shards are shared-nothing at runtime).
  MultiKeyConfig serial = SmallConfig();
  serial.scheme = GetParam();
  serial.shards = 4;
  serial.jobs = 1;
  MultiKeyConfig threaded = serial;
  threaded.jobs = 4;
  auto a = MultiKeySimulation::Run(serial);
  auto b = MultiKeySimulation::Run(threaded);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ExpectBitIdentical(*a, *b);
}

INSTANTIATE_TEST_SUITE_P(Schemes, MultiKeyShardTest,
                         ::testing::Values(experiment::Scheme::kPcx,
                                           experiment::Scheme::kCup,
                                           experiment::Scheme::kDup),
                         [](const auto& info) {
                           return std::string(
                               experiment::SchemeToString(info.param));
                         });

}  // namespace
}  // namespace dupnet::multikey
