#include "multikey/simulation.h"

#include <gtest/gtest.h>

namespace dupnet::multikey {
namespace {

MultiKeyConfig SmallConfig() {
  MultiKeyConfig config;
  config.num_nodes = 128;
  config.num_keys = 8;
  config.lambda = 10.0;
  config.ttl = 600.0;
  config.push_lead = 30.0;
  config.warmup_time = 600.0;
  config.measure_time = 1800.0;
  config.seed = 3;
  return config;
}

TEST(MultiKeyConfigTest, DefaultsValid) {
  EXPECT_TRUE(MultiKeyConfig().Validate().ok());
}

TEST(MultiKeyConfigTest, Rejections) {
  MultiKeyConfig config;
  config.num_nodes = 1;
  EXPECT_FALSE(config.Validate().ok());
  config = MultiKeyConfig();
  config.num_keys = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = MultiKeyConfig();
  config.lambda = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = MultiKeyConfig();
  config.push_lead = config.ttl;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(MultiKeyTest, RunsAndReportsPerKeyStats) {
  auto result = MultiKeySimulation::Run(SmallConfig());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->keys.size(), 8u);
  EXPECT_GT(result->aggregate.queries, 1000u);
  uint64_t per_key_total = 0;
  for (const KeyStats& key : result->keys) {
    EXPECT_NE(key.authority, kInvalidNode);
    per_key_total += key.metrics.queries;
  }
  EXPECT_EQ(per_key_total, result->aggregate.queries);
}

TEST(MultiKeyTest, KeyPopularityIsSkewed) {
  MultiKeyConfig config = SmallConfig();
  config.key_zipf_theta = 1.5;
  auto result = MultiKeySimulation::Run(config);
  ASSERT_TRUE(result.ok());
  // Rank-0 key must receive more queries than the coldest key.
  EXPECT_GT(result->keys.front().metrics.queries,
            2 * result->keys.back().metrics.queries);
}

TEST(MultiKeyTest, UniformKeysWhenThetaZero) {
  MultiKeyConfig config = SmallConfig();
  config.key_zipf_theta = 0.0;
  auto result = MultiKeySimulation::Run(config);
  ASSERT_TRUE(result.ok());
  const double expected = static_cast<double>(result->aggregate.queries) /
                          static_cast<double>(config.num_keys);
  for (const KeyStats& key : result->keys) {
    EXPECT_NEAR(static_cast<double>(key.metrics.queries), expected,
                expected * 0.25)
        << key.key_name;
  }
}

TEST(MultiKeyTest, AuthoritiesSpreadAcrossNodes) {
  MultiKeyConfig config = SmallConfig();
  config.num_keys = 32;
  auto result = MultiKeySimulation::Run(config);
  ASSERT_TRUE(result.ok());
  // Hashing 32 keys over 128 nodes: authorities should be well spread.
  EXPECT_GT(result->distinct_authorities, 16u);
  EXPECT_LE(result->max_keys_per_authority, 5u);
}

TEST(MultiKeyTest, AllSchemesRun) {
  for (experiment::Scheme scheme :
       {experiment::Scheme::kPcx, experiment::Scheme::kCup,
        experiment::Scheme::kDup}) {
    MultiKeyConfig config = SmallConfig();
    config.scheme = scheme;
    auto result = MultiKeySimulation::Run(config);
    ASSERT_TRUE(result.ok()) << experiment::SchemeToString(scheme);
    EXPECT_GT(result->aggregate.queries, 0u);
  }
}

TEST(MultiKeyTest, DupBeatsPcxInAggregate) {
  MultiKeyConfig pcx_config = SmallConfig();
  pcx_config.scheme = experiment::Scheme::kPcx;
  MultiKeyConfig dup_config = SmallConfig();
  dup_config.scheme = experiment::Scheme::kDup;
  auto pcx = MultiKeySimulation::Run(pcx_config);
  auto dup = MultiKeySimulation::Run(dup_config);
  ASSERT_TRUE(pcx.ok());
  ASSERT_TRUE(dup.ok());
  EXPECT_LT(dup->aggregate.avg_latency_hops, pcx->aggregate.avg_latency_hops);
  EXPECT_LT(dup->aggregate.avg_cost_hops, pcx->aggregate.avg_cost_hops);
}

TEST(MultiKeyTest, DeterministicForSeed) {
  auto a = MultiKeySimulation::Run(SmallConfig());
  auto b = MultiKeySimulation::Run(SmallConfig());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->aggregate.queries, b->aggregate.queries);
  EXPECT_DOUBLE_EQ(a->aggregate.avg_cost_hops, b->aggregate.avg_cost_hops);
}

}  // namespace
}  // namespace dupnet::multikey
