#include <map>
#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "audit/invariant_checker.h"
#include "dissem/bayeux.h"
#include "dissem/dup_backend.h"
#include "dissem/scribe.h"
#include "test_util.h"

namespace dupnet::dissem {
namespace {

using ::dupnet::testing::MakePaperTree;
using ::dupnet::testing::ProtocolHarness;

/// Harness variant that wires a DisseminationProtocol instead of a
/// consistency scheme.
class DissemFixture : public ::testing::Test {
 protected:
  DissemFixture() : harness_(MakePaperTree()) {}

  template <typename T>
  T* Make() {
    auto protocol = std::make_unique<T>(&harness_.network(),
                                        &harness_.tree());
    T* raw = protocol.get();
    protocol_ = std::move(protocol);
    harness_.network().set_handler(
        [raw](const net::Message& m) { raw->OnMessage(m); });
    protocol_->set_delivery_callback(
        [this](NodeId node, IndexVersion version) {
          deliveries_[version].insert(node);
        });
    return raw;
  }

  void Publish(IndexVersion version) {
    protocol_->Publish(version, harness_.engine().Now() + 3600.0);
    harness_.Drain();
  }

  void SubscribeAll(std::initializer_list<NodeId> nodes) {
    for (NodeId n : nodes) protocol_->Subscribe(n);
    harness_.Drain();
  }

  uint64_t PushHops() { return harness_.recorder().hops().push(); }
  uint64_t ControlHops() { return harness_.recorder().hops().control(); }

  ProtocolHarness harness_;
  std::unique_ptr<DisseminationProtocol> protocol_;
  std::map<IndexVersion, std::set<NodeId>> deliveries_;
};

// --- SCRIBE ---------------------------------------------------------------

using ScribeTest = DissemFixture;

TEST_F(ScribeTest, JoinBuildsMulticastTreeAlongRoutes) {
  auto* scribe = Make<ScribeDissemination>();
  SubscribeAll({6});
  // Join climbed 6 -> 5 -> 3 -> 2 -> 1; every hop is on the tree now.
  EXPECT_TRUE(scribe->OnMulticastTree(5));
  EXPECT_TRUE(scribe->OnMulticastTree(3));
  EXPECT_TRUE(scribe->ChildrenOf(5).count(6));
  EXPECT_TRUE(scribe->ChildrenOf(1).count(2));
}

TEST_F(ScribeTest, SecondJoinStopsAtExistingTree) {
  auto* scribe = Make<ScribeDissemination>();
  SubscribeAll({6});
  const uint64_t control = ControlHops();
  SubscribeAll({4});
  // N4's join is caught by N3 (already a forwarder): exactly one hop.
  EXPECT_EQ(ControlHops() - control, 1u);
  EXPECT_TRUE(scribe->ChildrenOf(3).count(4));
}

TEST_F(ScribeTest, PublishFlowsHopByHop) {
  Make<ScribeDissemination>();
  SubscribeAll({4, 6});
  const uint64_t before = PushHops();
  Publish(1);
  // Paper Figure 2 arithmetic: same five hops as CUP's push
  // (N1->N2->N3->{N4, N5->N6}).
  EXPECT_EQ(PushHops() - before, 5u);
  EXPECT_TRUE(deliveries_[1].count(4));
  EXPECT_TRUE(deliveries_[1].count(6));
  // Forwarders relay but do not "deliver".
  EXPECT_FALSE(deliveries_[1].count(5));
}

TEST_F(ScribeTest, LeavePrunesEmptyBranches) {
  auto* scribe = Make<ScribeDissemination>();
  SubscribeAll({6});
  protocol_->Unsubscribe(6);
  harness_.Drain();
  EXPECT_FALSE(scribe->OnMulticastTree(6));
  EXPECT_FALSE(scribe->OnMulticastTree(5));
  EXPECT_FALSE(scribe->OnMulticastTree(3));
  const uint64_t before = PushHops();
  Publish(1);
  EXPECT_EQ(PushHops() - before, 0u);
}

TEST_F(ScribeTest, ForwarderThatIsAlsoSubscriberStaysAfterChildLeaves) {
  auto* scribe = Make<ScribeDissemination>();
  SubscribeAll({5, 6});
  protocol_->Unsubscribe(6);
  harness_.Drain();
  EXPECT_TRUE(scribe->OnMulticastTree(5));
  Publish(1);
  EXPECT_TRUE(deliveries_[1].count(5));
  EXPECT_FALSE(deliveries_[1].count(6));
}

TEST_F(ScribeTest, MaxStateBoundedByChildren) {
  auto* scribe = Make<ScribeDissemination>();
  SubscribeAll({2, 3, 4, 5, 6, 7, 8});
  // No node has more multicast children than tree children.
  EXPECT_LE(scribe->MaxNodeState(), 2u);
}

// --- Bayeux -----------------------------------------------------------------

using BayeuxTest = DissemFixture;

TEST_F(BayeuxTest, JoinTravelsAllTheWayToRoot) {
  auto* bayeux = Make<BayeuxDissemination>();
  const uint64_t control = ControlHops();
  SubscribeAll({6});
  EXPECT_EQ(ControlHops() - control, 4u);  // Depth of N6.
  EXPECT_TRUE(bayeux->members().count(6));
}

TEST_F(BayeuxTest, RootStateGrowsWithMembership) {
  auto* bayeux = Make<BayeuxDissemination>();
  SubscribeAll({2, 4, 6, 7, 8});
  EXPECT_EQ(bayeux->MaxNodeState(), 5u);  // All state at the rendezvous.
}

TEST_F(BayeuxTest, PublishUnicastsDirectly) {
  Make<BayeuxDissemination>();
  SubscribeAll({4, 6});
  const uint64_t before = PushHops();
  Publish(1);
  EXPECT_EQ(PushHops() - before, 2u);  // One direct hop per member.
  EXPECT_TRUE(deliveries_[1].count(4));
  EXPECT_TRUE(deliveries_[1].count(6));
}

TEST_F(BayeuxTest, UnsubscribeRemovesMember) {
  auto* bayeux = Make<BayeuxDissemination>();
  SubscribeAll({6});
  protocol_->Unsubscribe(6);
  harness_.Drain();
  EXPECT_FALSE(bayeux->members().count(6));
  Publish(1);
  EXPECT_TRUE(deliveries_[1].empty());
}

TEST_F(BayeuxTest, RootCanSubscribeItself) {
  auto* bayeux = Make<BayeuxDissemination>();
  SubscribeAll({1});
  EXPECT_TRUE(bayeux->members().count(1));
  Publish(1);
  EXPECT_TRUE(deliveries_[1].count(1));
}

// --- DUP backend ------------------------------------------------------------

using DupBackendTest = DissemFixture;

TEST_F(DupBackendTest, DeliversToSubscribersSkippingIntermediates) {
  Make<DupDissemination>();
  SubscribeAll({4, 6});
  const uint64_t before = PushHops();
  Publish(1);
  EXPECT_EQ(PushHops() - before, 3u);  // Figure 2: N1->N3, N3->N4, N3->N6.
  EXPECT_TRUE(deliveries_[1].count(4));
  EXPECT_TRUE(deliveries_[1].count(6));
}

TEST_F(DupBackendTest, StateBoundedByDegree) {
  auto* dup = Make<DupDissemination>();
  SubscribeAll({2, 3, 4, 5, 6, 7, 8});
  EXPECT_LE(dup->MaxNodeState(), 3u);  // children + self entry.
  EXPECT_TRUE(audit::AuditQuiescent(harness_.tree(), harness_.network(),
                                    dup->protocol())
                  .ok());
}

// --- Cross-scheme comparison (paper Section V, quantified) ------------------

TEST(DisseminationComparison, PushCostOrderingMatchesSectionV) {
  // SCRIBE forwards hop-by-hop like CUP; DUP skips the intermediates;
  // Bayeux unicasts directly. For the Figure-2 subscriber set {N4, N6}:
  // SCRIBE = 5 hops, DUP = 3, Bayeux = 2.
  auto run = [](auto* protocol, ProtocolHarness& harness) {
    protocol->Subscribe(4);
    protocol->Subscribe(6);
    harness.Drain();
    const uint64_t before = harness.recorder().hops().push();
    protocol->Publish(1, harness.engine().Now() + 3600.0);
    harness.Drain();
    return harness.recorder().hops().push() - before;
  };
  ProtocolHarness h1(MakePaperTree()), h2(MakePaperTree()),
      h3(MakePaperTree());
  ScribeDissemination scribe(&h1.network(), &h1.tree());
  h1.network().set_handler([&](const net::Message& m) { scribe.OnMessage(m); });
  BayeuxDissemination bayeux(&h2.network(), &h2.tree());
  h2.network().set_handler([&](const net::Message& m) { bayeux.OnMessage(m); });
  DupDissemination dup(&h3.network(), &h3.tree());
  h3.network().set_handler([&](const net::Message& m) { dup.OnMessage(m); });

  const uint64_t scribe_hops = run(&scribe, h1);
  const uint64_t bayeux_hops = run(&bayeux, h2);
  const uint64_t dup_hops = run(&dup, h3);
  EXPECT_EQ(scribe_hops, 5u);
  EXPECT_EQ(dup_hops, 3u);
  EXPECT_EQ(bayeux_hops, 2u);
}

TEST(DisseminationComparison, StateOrderingMatchesSectionV) {
  // Bayeux concentrates O(group) state at the root; SCRIBE and DUP stay
  // degree-bounded ("DUP is more scalable than Bayeux because each node
  // only needs to maintain the information of its direct children").
  ProtocolHarness h1(MakePaperTree()), h2(MakePaperTree()),
      h3(MakePaperTree());
  ScribeDissemination scribe(&h1.network(), &h1.tree());
  h1.network().set_handler([&](const net::Message& m) { scribe.OnMessage(m); });
  BayeuxDissemination bayeux(&h2.network(), &h2.tree());
  h2.network().set_handler([&](const net::Message& m) { bayeux.OnMessage(m); });
  DupDissemination dup(&h3.network(), &h3.tree());
  h3.network().set_handler([&](const net::Message& m) { dup.OnMessage(m); });

  for (NodeId n = 2; n <= 8; ++n) {
    scribe.Subscribe(n);
    bayeux.Subscribe(n);
    dup.Subscribe(n);
  }
  h1.Drain();
  h2.Drain();
  h3.Drain();
  EXPECT_EQ(bayeux.MaxNodeState(), 7u);
  EXPECT_LE(scribe.MaxNodeState(), 2u);
  EXPECT_LE(dup.MaxNodeState(), 3u);
}

}  // namespace
}  // namespace dupnet::dissem
