#include "util/histogram.h"

#include <gtest/gtest.h>

namespace dupnet::util {
namespace {

TEST(HistogramTest, StartsEmpty) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Max(), 0u);
  EXPECT_EQ(h.ToString(), "n=0");
}

TEST(HistogramTest, MeanIsExact) {
  Histogram h;
  for (uint64_t v : {1u, 2u, 3u, 4u}) h.Add(v);
  EXPECT_DOUBLE_EQ(h.Mean(), 2.5);
  EXPECT_EQ(h.count(), 4u);
}

TEST(HistogramTest, CountAt) {
  Histogram h;
  h.Add(3);
  h.Add(3);
  h.Add(5);
  EXPECT_EQ(h.CountAt(3), 2u);
  EXPECT_EQ(h.CountAt(5), 1u);
  EXPECT_EQ(h.CountAt(4), 0u);
}

TEST(HistogramTest, QuantilesOnUniformRamp) {
  Histogram h;
  for (uint64_t v = 1; v <= 100; ++v) h.Add(v);
  EXPECT_EQ(h.Percentile50(), 50u);
  EXPECT_EQ(h.Percentile95(), 95u);
  EXPECT_EQ(h.Percentile99(), 99u);
  EXPECT_EQ(h.Quantile(1.0), 100u);
  EXPECT_EQ(h.Max(), 100u);
}

TEST(HistogramTest, QuantileOfConstant) {
  Histogram h;
  for (int i = 0; i < 10; ++i) h.Add(7);
  EXPECT_EQ(h.Percentile50(), 7u);
  EXPECT_EQ(h.Percentile99(), 7u);
}

TEST(HistogramTest, OverflowKeepsExactMeanAndMax) {
  Histogram h(/*max_tracked=*/10);
  h.Add(5);
  h.Add(1000);
  EXPECT_EQ(h.overflow_count(), 1u);
  EXPECT_TRUE(h.overflowed());
  EXPECT_DOUBLE_EQ(h.Mean(), 502.5);
  EXPECT_EQ(h.Max(), 1000u);
  // A quantile that lands in the overflow bucket clamps to the exact
  // overflow maximum — a real observation, never a sentinel.
  EXPECT_EQ(h.Quantile(1.0), 1000u);
}

TEST(HistogramTest, OverflowQuantileClampsToOverflowMax) {
  // Regression: quantiles falling in the overflow bucket used to report the
  // impossible sentinel max_tracked + 1, so latency_p95/p99 misreported
  // while Max() was exact. They must now return the overflow maximum and
  // keep Quantile(q) <= Max() for every q.
  Histogram h(/*max_tracked=*/10);
  for (int i = 0; i < 10; ++i) h.Add(2);
  for (uint64_t v : {500u, 600u, 700u}) h.Add(v);
  EXPECT_TRUE(h.overflowed());
  EXPECT_EQ(h.Percentile50(), 2u);
  EXPECT_EQ(h.Percentile95(), 700u);
  EXPECT_EQ(h.Percentile99(), 700u);
  EXPECT_EQ(h.Quantile(1.0), 700u);
  EXPECT_EQ(h.Max(), 700u);
  for (double q : {0.5, 0.77, 0.9, 0.95, 0.99, 1.0}) {
    EXPECT_LE(h.Quantile(q), h.Max()) << "q=" << q;
  }
  EXPECT_NE(h.Quantile(1.0), 11u) << "sentinel leaked";
}

TEST(HistogramTest, AllObservationsOverflowing) {
  Histogram h(/*max_tracked=*/4);
  h.Add(100);
  h.Add(200);
  EXPECT_EQ(h.Percentile50(), 200u);
  EXPECT_EQ(h.Percentile99(), 200u);
  EXPECT_EQ(h.Max(), 200u);
}

TEST(HistogramTest, NotOverflowedWithoutLargeValues) {
  Histogram h(/*max_tracked=*/10);
  h.Add(10);  // Exactly max_tracked is still tracked.
  EXPECT_FALSE(h.overflowed());
  EXPECT_EQ(h.Quantile(1.0), 10u);
}

TEST(HistogramTest, ToStringMarksOverflow) {
  Histogram h(/*max_tracked=*/4);
  h.Add(1);
  EXPECT_EQ(h.ToString().find("overflow="), std::string::npos);
  h.Add(99);
  const std::string s = h.ToString();
  EXPECT_NE(s.find("overflow=1"), std::string::npos) << s;
  EXPECT_NE(s.find("max=99"), std::string::npos) << s;
}

TEST(HistogramTest, MergeCombines) {
  Histogram a(16), b(16);
  a.Add(1);
  a.Add(2);
  b.Add(3);
  b.Add(100);  // Overflow.
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.Mean(), 106.0 / 4.0);
  EXPECT_EQ(a.Max(), 100u);
  EXPECT_EQ(a.CountAt(3), 1u);
}

TEST(HistogramTest, MergeRejectsMismatchedBucketLayout) {
  Histogram a(16), b(32);
  a.Add(1);
  b.Add(2);
  const auto status = a.Merge(b);
  EXPECT_TRUE(status.IsInvalidArgument()) << status.ToString();
  // The failed merge must not have touched the destination.
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.CountAt(2), 0u);
  EXPECT_DOUBLE_EQ(a.Mean(), 1.0);
}

TEST(HistogramTest, MergeOfPartitionsEqualsConcatenation) {
  // Exact-composition property: splitting one observation stream into two
  // partitions and merging must reproduce every counter of the unsplit
  // histogram, including the overflow bucket's sum/max.
  const uint64_t values[] = {0, 1, 1, 7, 16, 17, 200, 3, 900, 5};
  Histogram whole(16), left(16), right(16);
  for (size_t i = 0; i < 10; ++i) {
    whole.Add(values[i]);
    (i % 2 == 0 ? left : right).Add(values[i]);
  }
  ASSERT_TRUE(left.Merge(right).ok());
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_EQ(left.overflow_count(), whole.overflow_count());
  EXPECT_EQ(left.Max(), whole.Max());
  EXPECT_DOUBLE_EQ(left.Mean(), whole.Mean());
  for (uint64_t v = 0; v <= 16; ++v) {
    EXPECT_EQ(left.CountAt(v), whole.CountAt(v)) << "bucket " << v;
  }
  EXPECT_EQ(left.Percentile50(), whole.Percentile50());
  EXPECT_EQ(left.Percentile95(), whole.Percentile95());
  EXPECT_EQ(left.Percentile99(), whole.Percentile99());
}

TEST(HistogramTest, MaxTrackedReportsLayout) {
  EXPECT_EQ(Histogram(16).max_tracked(), 16u);
  EXPECT_EQ(Histogram().max_tracked(), 256u);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Add(4);
  h.Add(400);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.overflow_count(), 0u);
  h.Add(2);
  EXPECT_DOUBLE_EQ(h.Mean(), 2.0);
}

TEST(HistogramTest, ToStringSummarises) {
  Histogram h;
  for (uint64_t v = 0; v < 10; ++v) h.Add(v);
  const std::string s = h.ToString();
  EXPECT_NE(s.find("n=10"), std::string::npos);
  EXPECT_NE(s.find("p95="), std::string::npos);
}

TEST(HistogramTest, SkewedDistributionTail) {
  Histogram h;
  for (int i = 0; i < 99; ++i) h.Add(0);
  h.Add(50);
  EXPECT_EQ(h.Percentile50(), 0u);
  EXPECT_EQ(h.Percentile99(), 0u);
  EXPECT_EQ(h.Quantile(1.0), 50u);
}

}  // namespace
}  // namespace dupnet::util
