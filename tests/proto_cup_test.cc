#include "proto/cup.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace dupnet::proto {
namespace {

using ::dupnet::testing::MakePaperTree;
using ::dupnet::testing::ProtocolHarness;

class CupTest : public ::testing::Test {
 protected:
  CupTest() : harness_(MakePaperTree()) {}

  void MakeProtocol(ProtocolOptions options = ProtocolOptions(),
                    CupOptions cup_options = CupOptions()) {
    protocol_ = std::make_unique<CupProtocol>(
        &harness_.network(), &harness_.tree(), options, cup_options);
    harness_.Attach(protocol_.get());
  }

  uint64_t PushHops() { return harness_.recorder().hops().push(); }

  ProtocolHarness harness_;
  std::unique_ptr<CupProtocol> protocol_;
};

TEST_F(CupTest, Name) {
  MakeProtocol();
  EXPECT_EQ(protocol_->name(), "cup");
}

TEST_F(CupTest, NoDemandNoPushes) {
  MakeProtocol();
  harness_.Publish(1);
  harness_.Publish(2);
  EXPECT_EQ(PushHops(), 0u);
}

TEST_F(CupTest, QueryEstablishesDemandAlongPath) {
  MakeProtocol();
  harness_.Publish(1);
  harness_.QueryAt(6);  // Miss climbs 6 -> 5 -> 3 -> 2 -> 1.
  EXPECT_TRUE(protocol_->WouldPushTo(5, 6));
  EXPECT_TRUE(protocol_->WouldPushTo(3, 5));
  EXPECT_TRUE(protocol_->WouldPushTo(2, 3));
  EXPECT_TRUE(protocol_->WouldPushTo(1, 2));
  EXPECT_FALSE(protocol_->WouldPushTo(3, 4));
  EXPECT_FALSE(protocol_->WouldPushTo(6, 7));
}

TEST_F(CupTest, PushFollowsDemandHopByHop) {
  MakeProtocol();
  harness_.Publish(1);
  harness_.QueryAt(6);
  const uint64_t before = PushHops();
  harness_.Publish(2);
  // Push travels N1 -> N2 -> N3 -> N5 -> N6: every intermediate node
  // receives the update even though only N6 wanted it (paper Section II-B).
  EXPECT_EQ(PushHops() - before, 4u);
  EXPECT_EQ(protocol_->CacheOf(6).stored_version(), 2u);
  EXPECT_EQ(protocol_->CacheOf(3).stored_version(), 2u);
}

TEST_F(CupTest, PaperFigure2PushCostIsFive) {
  MakeProtocol();
  harness_.Publish(1);
  harness_.QueryAt(4);
  harness_.QueryAt(6);
  const uint64_t before = PushHops();
  harness_.Publish(2);
  // Paper Section III-A: serving N4 and N6 costs CUP five hops
  // (N1->N2, N2->N3, N3->N4, N3->N5, N5->N6).
  EXPECT_EQ(PushHops() - before, 5u);
}

TEST_F(CupTest, PushedNodeServesLocally) {
  MakeProtocol();
  harness_.Publish(1);
  harness_.QueryAt(6);
  harness_.Publish(2);
  const uint64_t requests = harness_.recorder().hops().request();
  harness_.QueryAt(6);  // Fresh from the push: zero-hop.
  EXPECT_EQ(harness_.recorder().hops().request(), requests);
}

TEST_F(CupTest, DemandDecaysAfterTtlWindow) {
  ProtocolOptions options;
  options.ttl = 100.0;
  MakeProtocol(options);
  protocol_->OnRootPublish(1, 100.0);
  harness_.QueryAt(6);
  harness_.AdvanceTime(150.0);
  EXPECT_FALSE(protocol_->WouldPushTo(5, 6));
  const uint64_t before = PushHops();
  protocol_->OnRootPublish(2, harness_.engine().Now() + 100.0);
  harness_.Drain();
  EXPECT_EQ(PushHops(), before);  // Cut off, as the paper warns.
}

TEST_F(CupTest, OscillationPushedEveryOtherCycle) {
  // The paper's CUP weakness: a node served entirely by the previous push
  // generates no demand, so the next cycle skips it.
  ProtocolOptions options;
  options.ttl = 100.0;
  options.threshold_c = 1000;  // Disable explicit interest notifications.
  MakeProtocol(options);
  protocol_->OnRootPublish(1, 100.0);
  harness_.QueryAt(6);  // Demand up the whole path.

  harness_.AdvanceTime(95.0);
  uint64_t before = PushHops();
  protocol_->OnRootPublish(2, harness_.engine().Now() + 100.0);
  harness_.Drain();
  EXPECT_EQ(PushHops() - before, 4u);  // Cycle 1: pushed.

  harness_.AdvanceTime(95.0);  // N6 quiet: fully served by the push.
  before = PushHops();
  protocol_->OnRootPublish(3, harness_.engine().Now() + 100.0);
  harness_.Drain();
  EXPECT_EQ(PushHops() - before, 0u);  // Cycle 2: cut off.

  harness_.QueryAt(6);  // Copy of v2 still valid (<100 s old): local hit,
                        // still no demand... until it expires:
  harness_.AdvanceTime(95.0);
  harness_.QueryAt(6);  // Now a miss; demand flows again.
  before = PushHops();
  protocol_->OnRootPublish(4, harness_.engine().Now() + 100.0);
  harness_.Drain();
  EXPECT_EQ(PushHops() - before, 4u);  // Cycle 3: pushed again.
}

TEST_F(CupTest, ExplicitInterestNotificationKeepsHotNodeFed) {
  ProtocolOptions options;
  options.ttl = 100.0;
  options.threshold_c = 3;
  MakeProtocol(options);
  protocol_->OnRootPublish(1, 100.0);
  harness_.QueryAt(6, 5);  // Crosses the c=3 threshold: notifies N5.
  EXPECT_GT(harness_.recorder().hops().control(), 0u);
  EXPECT_TRUE(protocol_->WouldPushTo(5, 6));
}

TEST_F(CupTest, InterestRegisterCountsAsDemand) {
  MakeProtocol();
  harness_.Publish(1);
  net::Message msg;
  msg.type = net::MessageType::kInterestRegister;
  msg.from = 6;
  msg.to = 5;
  msg.subject = 6;
  harness_.network().Send(std::move(msg));
  harness_.Drain();
  EXPECT_TRUE(protocol_->WouldPushTo(5, 6));
}

TEST_F(CupTest, DuplicatePushesNotForwardedTwice) {
  MakeProtocol();
  harness_.Publish(1);
  harness_.QueryAt(6);
  harness_.Publish(2);
  const uint64_t before = PushHops();
  // Replay the same version directly to N5; it must not re-forward.
  net::Message push;
  push.type = net::MessageType::kPush;
  push.from = 3;
  push.to = 5;
  push.version = 2;
  push.expiry = harness_.engine().Now() + 3600.0;
  harness_.network().Send(std::move(push));
  harness_.Drain();
  EXPECT_EQ(PushHops() - before, 1u);  // Only the replayed hop itself.
}

TEST_F(CupTest, NodeRemovalPurgesStateAndReNotifies) {
  ProtocolOptions options;
  options.threshold_c = 2;
  MakeProtocol(options);
  harness_.Publish(1);
  harness_.QueryAt(6, 4);  // N6 interested and notified to N5.
  // N5 dies; N6 reparents to N3 (driver semantics).
  const std::vector<NodeId> orphans = harness_.tree().Children(5);
  ASSERT_TRUE(harness_.tree().RemoveNode(5).ok());
  harness_.network().SetNodeDown(5, true);
  protocol_->OnNodeRemoved(5, 3, orphans, false, harness_.tree().root());
  harness_.Drain();
  // N6 re-notified its new parent N3.
  EXPECT_TRUE(protocol_->WouldPushTo(3, 6));
}

TEST_F(CupTest, SplitJoinInheritsBranchDemand) {
  ProtocolOptions options;
  options.threshold_c = 2;
  MakeProtocol(options);
  harness_.Publish(1);
  harness_.QueryAt(6, 4);  // N6 interested and notified to N5.
  ASSERT_TRUE(protocol_->WouldPushTo(5, 6));
  // N5' (56) splits the 5-6 edge (paper Section III-C arrival case 2).
  ASSERT_TRUE(harness_.tree().SplitEdge(5, 6, 56).ok());
  protocol_->OnSplitJoined(56, 5, 6);
  harness_.Drain();
  // N5' inherited N5's branch entry for N6, and N5 re-keyed the branch
  // under its new child N5' — neither a duplicate registration for the
  // departed key nor lost interest.
  EXPECT_TRUE(protocol_->HasBranchEntry(56, 6));
  EXPECT_TRUE(protocol_->HasBranchEntry(5, 56));
  EXPECT_FALSE(protocol_->HasBranchEntry(5, 6));
  EXPECT_TRUE(protocol_->WouldPushTo(56, 6));
  EXPECT_TRUE(protocol_->WouldPushTo(5, 56));
  const auto audit = harness_.Audit();
  EXPECT_TRUE(audit.ok()) << audit.ToString();
  // The next update still reaches the interested node via the new hop.
  harness_.Publish(2);
  EXPECT_EQ(protocol_->CacheOf(6).stored_version(), 2u);
}

TEST_F(CupTest, InterestRegisterInFlightAcrossSplitIsRerouted) {
  ProtocolOptions options;
  options.threshold_c = 2;
  MakeProtocol(options);
  harness_.Publish(1);
  harness_.QueryAt(6);
  protocol_->OnLocalQuery(6);  // Crosses c=2: the register is in flight.
  ASSERT_TRUE(harness_.tree().SplitEdge(5, 6, 56).ok());
  protocol_->OnSplitJoined(56, 5, 6);
  harness_.Drain();
  // The stale register reached N5 from a node that is no longer its child
  // and was re-routed to N6's new parent N5', so the registration
  // invariant (notified node => parent holds its branch entry) holds.
  EXPECT_TRUE(protocol_->HasBranchEntry(56, 6));
  EXPECT_TRUE(protocol_->WouldPushTo(56, 6));
  const auto audit = harness_.Audit();
  EXPECT_TRUE(audit.ok()) << audit.ToString();
}

TEST_F(CupTest, PolicyNames) {
  EXPECT_EQ(CupPushPolicyToString(CupPushPolicy::kDemandWindow),
            "demand-window");
  EXPECT_EQ(CupPushPolicyToString(CupPushPolicy::kPopularityThreshold),
            "popularity-threshold");
  EXPECT_EQ(CupPushPolicyToString(CupPushPolicy::kInvestmentReturn),
            "investment-return");
}

TEST_F(CupTest, PopularityPolicyNeedsRepeatedDemand) {
  CupOptions cup_options;
  cup_options.policy = CupPushPolicy::kPopularityThreshold;
  cup_options.popularity_threshold = 3;
  MakeProtocol(ProtocolOptions(), cup_options);
  harness_.Publish(1);
  harness_.QueryAt(6);
  // One miss is not enough demand for a conservative pusher.
  EXPECT_FALSE(protocol_->WouldPushTo(5, 6));
  // Repeated misses qualify the branch. Force misses by expiring N6's
  // copy via new versions it never receives.
  harness_.Publish(2);
  harness_.Publish(3);
  // N6's copy is still valid (per-copy TTL), so exercise the tracker with
  // direct requests from N6's branch instead.
  for (int i = 0; i < 2; ++i) {
    net::Message request;
    request.type = net::MessageType::kRequest;
    request.from = 6;
    request.to = 5;
    request.origin = 6;
    request.hops = 1;
    request.route = {6};
    harness_.network().Send(std::move(request));
    harness_.Drain();
  }
  EXPECT_TRUE(protocol_->WouldPushTo(5, 6));
}

TEST_F(CupTest, InvestmentReturnSpendsCredit) {
  CupOptions cup_options;
  cup_options.policy = CupPushPolicy::kInvestmentReturn;
  cup_options.max_credit = 2.0;
  ProtocolOptions options;
  options.threshold_c = 1000;  // No explicit notifications.
  MakeProtocol(options, cup_options);
  harness_.Publish(1);
  harness_.QueryAt(6);  // Earns 1 credit along the path.
  harness_.QueryAt(6);  // Local hit: no new credit.

  uint64_t before = PushHops();
  harness_.Publish(2);
  EXPECT_EQ(PushHops() - before, 4u);  // Credit spent on the push.

  before = PushHops();
  harness_.Publish(3);
  // Balance exhausted and no new demand: the branch is cut off.
  EXPECT_EQ(PushHops() - before, 0u);
}

TEST_F(CupTest, InvestmentReturnCreditIsCapped) {
  CupOptions cup_options;
  cup_options.policy = CupPushPolicy::kInvestmentReturn;
  cup_options.max_credit = 2.0;
  ProtocolOptions options;
  options.threshold_c = 1000;
  MakeProtocol(options, cup_options);
  harness_.Publish(1);
  // Many direct requests from N6's branch at N5: credit caps at 2.
  for (int i = 0; i < 10; ++i) {
    net::Message request;
    request.type = net::MessageType::kRequest;
    request.from = 6;
    request.to = 5;
    request.origin = 6;
    request.hops = 1;
    request.route = {6};
    harness_.network().Send(std::move(request));
    harness_.Drain();
  }
  // N5 can push at most twice without fresh demand.
  int pushes = 0;
  for (IndexVersion v = 2; v <= 5; ++v) {
    const uint64_t before = PushHops();
    net::Message push;
    push.type = net::MessageType::kPush;
    push.from = 3;
    push.to = 5;
    push.version = v;
    push.expiry = harness_.engine().Now() + 3600.0;
    harness_.network().Send(std::move(push));
    harness_.Drain();
    if (PushHops() - before > 1) ++pushes;  // N5 forwarded to N6.
  }
  EXPECT_EQ(pushes, 2);
}

TEST_F(CupTest, PopularityThresholdZeroAlwaysPushes) {
  // The degenerate bar "count >= 0" holds for a branch with no recorded
  // demand at all — popularity_threshold == 0 must flood unconditionally,
  // not be treated like the demand-window policy's "count > 0".
  CupOptions cup_options;
  cup_options.policy = CupPushPolicy::kPopularityThreshold;
  cup_options.popularity_threshold = 0;
  MakeProtocol(ProtocolOptions(), cup_options);
  // No query was ever issued: every branch is still push-eligible.
  EXPECT_TRUE(protocol_->WouldPushTo(1, 2));
  EXPECT_TRUE(protocol_->WouldPushTo(5, 6));
  EXPECT_TRUE(protocol_->WouldPushTo(6, 8));
  const uint64_t before = PushHops();
  harness_.Publish(1);
  // Full flood: one push per tree edge (7 edges in the paper tree).
  EXPECT_EQ(PushHops() - before, 7u);
  EXPECT_EQ(protocol_->CacheOf(4).stored_version(), 1u);
  EXPECT_EQ(protocol_->CacheOf(8).stored_version(), 1u);
  const auto audit = harness_.Audit();
  EXPECT_TRUE(audit.ok()) << audit.ToString();
}

TEST_F(CupTest, SplitInheritedDemandSurvivesSlotRecycling) {
  // Regression for the split-inheritance copy under NodeSlab owner-tag
  // recycling: the newcomer of a second split lands on a slab slot a
  // removed node just vacated. The inherited AccessTracker must be a deep,
  // slot-independent copy — a ring referencing the recycled slot's erased
  // state would lose (or corrupt) the branch's demand.
  ProtocolOptions options;
  options.threshold_c = 2;
  MakeProtocol(options);
  harness_.Publish(1);
  harness_.QueryAt(6, 4);  // Demand along 6 -> 5 -> 3 -> 2 -> 1.

  // Split 1: N5' (56) takes over the 5-6 edge and inherits the demand.
  ASSERT_TRUE(harness_.tree().SplitEdge(5, 6, 56).ok());
  protocol_->OnSplitJoined(56, 5, 6);
  harness_.Drain();
  ASSERT_TRUE(protocol_->WouldPushTo(56, 6));

  // A leaf leaves, vacating its slab slot for recycling.
  ASSERT_TRUE(harness_.tree().RemoveNode(4).ok());
  harness_.network().SetNodeDown(4, true);
  protocol_->OnNodeRemoved(4, 3, {}, /*was_root=*/false,
                           harness_.tree().root());
  harness_.Drain();

  // Split 2: N5'' (57) splits the 56-6 edge; its state lands on the
  // recycled slot. The demand chain must survive end to end.
  ASSERT_TRUE(harness_.tree().SplitEdge(56, 6, 57).ok());
  protocol_->OnSplitJoined(57, 56, 6);
  harness_.Drain();
  EXPECT_TRUE(protocol_->HasBranchEntry(57, 6));
  EXPECT_TRUE(protocol_->WouldPushTo(57, 6));
  EXPECT_TRUE(protocol_->HasBranchEntry(56, 57));
  EXPECT_FALSE(protocol_->HasBranchEntry(56, 6));
  const auto audit = harness_.Audit();
  EXPECT_TRUE(audit.ok()) << audit.ToString();
  // The next update still reaches the interested node through both
  // inherited hops: 5 -> 56 -> 57 -> 6.
  harness_.Publish(2);
  EXPECT_EQ(protocol_->CacheOf(6).stored_version(), 2u);
}

}  // namespace
}  // namespace dupnet::proto
