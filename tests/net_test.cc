#include "net/message.h"
#include "net/overlay_network.h"

#include <vector>

#include <gtest/gtest.h>

#include "metrics/recorder.h"
#include "sim/engine.h"
#include "util/rng.h"

namespace dupnet::net {
namespace {

class OverlayNetworkTest : public ::testing::Test {
 protected:
  OverlayNetworkTest() : rng_(1), network_(&engine_, &rng_, &recorder_, 0.1) {
    network_.set_handler(
        [this](const Message& m) { delivered_.push_back(m); });
  }

  Message MakeMessage(MessageType type, NodeId from, NodeId to) {
    Message m;
    m.type = type;
    m.from = from;
    m.to = to;
    return m;
  }

  sim::Engine engine_;
  util::Rng rng_;
  metrics::Recorder recorder_;
  OverlayNetwork network_;
  std::vector<Message> delivered_;
};

TEST(MessageTest, TypeNames) {
  EXPECT_EQ(MessageTypeToString(MessageType::kRequest), "Request");
  EXPECT_EQ(MessageTypeToString(MessageType::kSubstitute), "Substitute");
  EXPECT_EQ(MessageTypeToString(MessageType::kInterestRegister),
            "InterestRegister");
}

TEST(MessageTest, HopClasses) {
  EXPECT_EQ(HopClassOf(MessageType::kRequest), metrics::HopClass::kRequest);
  EXPECT_EQ(HopClassOf(MessageType::kReply), metrics::HopClass::kReply);
  EXPECT_EQ(HopClassOf(MessageType::kPush), metrics::HopClass::kPush);
  EXPECT_EQ(HopClassOf(MessageType::kSubscribe), metrics::HopClass::kControl);
  EXPECT_EQ(HopClassOf(MessageType::kUnsubscribe),
            metrics::HopClass::kControl);
  EXPECT_EQ(HopClassOf(MessageType::kSubstitute), metrics::HopClass::kControl);
}

TEST(MessageTest, ToStringMentionsEndpoints) {
  Message m;
  m.type = MessageType::kPush;
  m.from = 3;
  m.to = 9;
  const std::string s = m.ToString();
  EXPECT_NE(s.find("Push"), std::string::npos);
  EXPECT_NE(s.find("3->9"), std::string::npos);
}

TEST(MessageTest, ToStringRendersEveryField) {
  // ToString() is the diagnostic rendering of decoded wire frames
  // (docs/wire-format.md); no field may be silently dropped. This pins the
  // regression where seq/free_ride/subject2/route were omitted.
  Message m;
  m.type = MessageType::kSubstitute;
  m.from = 3;
  m.to = 9;
  m.origin = 12;
  m.hops = 4;
  m.version = 77;
  m.expiry = 1.5;
  m.stale = true;
  m.free_ride = true;
  m.seq = 123;
  m.subject = 40;
  m.subject2 = 41;
  m.route = {12, 5, 9};
  const std::string s = m.ToString();
  for (const char* token :
       {"Substitute", "3->9", "origin=12", "hops=4", "v=77", "expiry=1.5",
        "stale=1", "free_ride=1", "seq=123", "subject=40", "subject2=41",
        "route[3]=", "{12,5,9}"}) {
    EXPECT_NE(s.find(token), std::string::npos)
        << "missing '" << token << "' in: " << s;
  }
}

TEST(MessageTest, ToStringElidesLongRoutes) {
  Message m;
  for (NodeId i = 0; i < 12; ++i) m.route.push_back(i);
  const std::string s = m.ToString();
  EXPECT_NE(s.find("route[12]="), std::string::npos) << s;
  EXPECT_NE(s.find(",..."), std::string::npos) << s;
}

TEST_F(OverlayNetworkTest, DeliversAfterLatency) {
  network_.Send(MakeMessage(MessageType::kRequest, 1, 2));
  EXPECT_TRUE(delivered_.empty());  // Not yet delivered.
  engine_.Run();
  ASSERT_EQ(delivered_.size(), 1u);
  EXPECT_EQ(delivered_[0].to, 2u);
  EXPECT_GT(engine_.Now(), 0.0);
}

TEST_F(OverlayNetworkTest, ChargesOneHopPerSend) {
  network_.Send(MakeMessage(MessageType::kRequest, 1, 2));
  network_.Send(MakeMessage(MessageType::kPush, 1, 3));
  network_.Send(MakeMessage(MessageType::kSubscribe, 2, 1));
  engine_.Run();
  EXPECT_EQ(recorder_.hops().request(), 1u);
  EXPECT_EQ(recorder_.hops().push(), 1u);
  EXPECT_EQ(recorder_.hops().control(), 1u);
  EXPECT_EQ(recorder_.hops().total(), 3u);
}

TEST_F(OverlayNetworkTest, MultiHopChargesAllHops) {
  network_.SendMultiHop(MakeMessage(MessageType::kPush, 1, 2),
                        /*extra_hops=*/3);
  engine_.Run();
  EXPECT_EQ(recorder_.hops().push(), 4u);
  EXPECT_EQ(delivered_.size(), 1u);
}

TEST_F(OverlayNetworkTest, FreeRideChargesNothing) {
  Message m = MakeMessage(MessageType::kSubscribe, 1, 2);
  m.free_ride = true;
  network_.Send(std::move(m));
  engine_.Run();
  EXPECT_EQ(recorder_.hops().total(), 0u);
  EXPECT_EQ(delivered_.size(), 1u);  // Still delivered.
}

TEST_F(OverlayNetworkTest, FifoPerPairPreservesOrder) {
  for (uint32_t i = 0; i < 50; ++i) {
    Message m = MakeMessage(MessageType::kRequest, 1, 2);
    m.hops = i;
    network_.Send(std::move(m));
  }
  engine_.Run();
  ASSERT_EQ(delivered_.size(), 50u);
  for (uint32_t i = 0; i < 50; ++i) {
    EXPECT_EQ(delivered_[i].hops, i) << "reordered at " << i;
  }
}

TEST_F(OverlayNetworkTest, NonFifoCanReorder) {
  network_.set_fifo_pairs(false);
  bool reordered = false;
  for (int attempt = 0; attempt < 20 && !reordered; ++attempt) {
    delivered_.clear();
    for (uint32_t i = 0; i < 20; ++i) {
      Message m = MakeMessage(MessageType::kRequest, 1, 2);
      m.hops = i;
      network_.Send(std::move(m));
    }
    engine_.Run();
    for (size_t i = 0; i + 1 < delivered_.size(); ++i) {
      if (delivered_[i].hops > delivered_[i + 1].hops) reordered = true;
    }
  }
  EXPECT_TRUE(reordered);
}

TEST_F(OverlayNetworkTest, DownDestinationDropsAtSendButChargesHop) {
  network_.SetNodeDown(2, true);
  network_.Send(MakeMessage(MessageType::kRequest, 1, 2));
  engine_.Run();
  EXPECT_TRUE(delivered_.empty());
  EXPECT_EQ(network_.messages_dropped(), 1u);
  // The sender committed the transmission before discovering the peer is
  // gone, so the paper's cost metric includes the wasted hop.
  EXPECT_EQ(recorder_.hops().total(), 1u);
  EXPECT_EQ(recorder_.delivery().total_sent(), 1u);
  EXPECT_EQ(recorder_.delivery().total_dropped(), 1u);
}

TEST_F(OverlayNetworkTest, DownSenderDrops) {
  network_.SetNodeDown(1, true);
  network_.Send(MakeMessage(MessageType::kRequest, 1, 2));
  engine_.Run();
  EXPECT_TRUE(delivered_.empty());
}

TEST_F(OverlayNetworkTest, CrashWhileInFlightDropsAtDelivery) {
  network_.Send(MakeMessage(MessageType::kRequest, 1, 2));
  network_.SetNodeDown(2, true);  // Crash after the message departed.
  engine_.Run();
  EXPECT_TRUE(delivered_.empty());
  EXPECT_EQ(network_.messages_dropped(), 1u);
  // The hop was charged at send time: the packet did travel.
  EXPECT_EQ(recorder_.hops().request(), 1u);
}

TEST_F(OverlayNetworkTest, NodeCanComeBackUp) {
  network_.SetNodeDown(2, true);
  network_.SetNodeDown(2, false);
  network_.Send(MakeMessage(MessageType::kRequest, 1, 2));
  engine_.Run();
  EXPECT_EQ(delivered_.size(), 1u);
}

TEST_F(OverlayNetworkTest, MeanLatencyApproximatelyExponential) {
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    network_.Send(MakeMessage(MessageType::kRequest, 1, 2));
  }
  // All sends happen at t=0; FIFO monotonicity inflates per-pair delivery,
  // so use distinct pairs via round-robin destinations instead.
  engine_.Run();
  // Instead measure directly: fresh network, distinct pairs.
  sim::Engine engine2;
  util::Rng rng2(9);
  metrics::Recorder rec2;
  OverlayNetwork net2(&engine2, &rng2, &rec2, 0.1);
  double last = 0;
  double sum = 0;
  int count = 0;
  net2.set_handler([&](const Message&) {
    sum += engine2.Now() - last;
    ++count;
  });
  for (int i = 0; i < n; ++i) {
    Message m;
    m.type = MessageType::kRequest;
    m.from = 1;
    m.to = static_cast<NodeId>(2 + i);  // Distinct pair each time: no FIFO
    net2.Send(std::move(m));            // queueing effect.
  }
  engine2.Run();
  EXPECT_EQ(count, n);
  EXPECT_NEAR(sum / count, 0.1, 0.01);
}

TEST_F(OverlayNetworkTest, MessagesSentCounter) {
  network_.Send(MakeMessage(MessageType::kRequest, 1, 2));
  network_.Send(MakeMessage(MessageType::kRequest, 2, 3));
  EXPECT_EQ(network_.messages_sent(), 2u);
}

}  // namespace
}  // namespace dupnet::net
