// Tests for the packed binary wire format (docs/wire-format.md): exhaustive
// round-trips over every message type and edge-case field value, the
// malformed-frame corpus (truncation at every byte offset, unknown
// msgcodes, flag/reserved garbage, route overflow, non-finite expiry,
// trailing bytes — every one must come back as a clean util::Status, never
// UB), and a live loopback pass through net::UdpTransport.

#include "net/wire.h"

#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "metrics/recorder.h"
#include "net/message.h"
#include "net/overlay_network.h"
#include "net/udp_transport.h"
#include "sim/engine.h"
#include "util/rng.h"
#include "util/str.h"

namespace dupnet::net {
namespace {

const MessageType kAllTypes[] = {
    MessageType::kRequest,      MessageType::kReply,
    MessageType::kPush,         MessageType::kSubscribe,
    MessageType::kUnsubscribe,  MessageType::kSubstitute,
    MessageType::kInterestRegister, MessageType::kInterestDeregister,
    MessageType::kAck,
};

Message RoundTrip(const Message& in) {
  std::vector<uint8_t> bytes;
  EXPECT_TRUE(wire::Serialize(in, &bytes).ok());
  EXPECT_EQ(bytes.size(), wire::SerializedSize(in));
  Message out;
  const util::Status parsed = wire::Parse(bytes.data(), bytes.size(), &out);
  EXPECT_TRUE(parsed.ok()) << parsed.ToString();
  return out;
}

TEST(WireCodes, AreStableAndExhaustive) {
  // The on-wire codes are a protocol contract, pinned independently of the
  // C++ enum order — reordering MessageType must not change them.
  EXPECT_EQ(wire::MsgCodeOf(MessageType::kRequest), 0x01);
  EXPECT_EQ(wire::MsgCodeOf(MessageType::kReply), 0x02);
  EXPECT_EQ(wire::MsgCodeOf(MessageType::kPush), 0x03);
  EXPECT_EQ(wire::MsgCodeOf(MessageType::kSubscribe), 0x04);
  EXPECT_EQ(wire::MsgCodeOf(MessageType::kUnsubscribe), 0x05);
  EXPECT_EQ(wire::MsgCodeOf(MessageType::kSubstitute), 0x06);
  EXPECT_EQ(wire::MsgCodeOf(MessageType::kInterestRegister), 0x07);
  EXPECT_EQ(wire::MsgCodeOf(MessageType::kInterestDeregister), 0x08);
  EXPECT_EQ(wire::MsgCodeOf(MessageType::kAck), 0x09);
  for (MessageType type : kAllTypes) {
    auto back = wire::MessageTypeFromCode(wire::MsgCodeOf(type));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, type);
  }
  EXPECT_FALSE(wire::MessageTypeFromCode(0x00).ok());
  for (int code = 0x0A; code <= 0xFF; ++code) {
    EXPECT_FALSE(wire::MessageTypeFromCode(static_cast<uint8_t>(code)).ok())
        << "code " << code << " should be unassigned";
  }
}

TEST(WireRoundTrip, EveryTypeDefaultFields) {
  for (MessageType type : kAllTypes) {
    Message m;
    m.type = type;
    m.from = 1;
    m.to = 2;
    EXPECT_EQ(RoundTrip(m), m) << MessageTypeToString(type);
  }
}

TEST(WireRoundTrip, EveryTypeEdgeCaseFields) {
  // Every type crossed with the extreme corners of every field: sentinel
  // node ids, saturated counters, negative/huge expiries, both flags, a
  // reliable seq, and a populated route.
  for (MessageType type : kAllTypes) {
    for (int corner = 0; corner < 2; ++corner) {
      Message m;
      m.type = type;
      m.from = corner == 0 ? 0 : kInvalidNode;
      m.to = corner == 0 ? kInvalidNode : 0;
      m.origin = kInvalidNode;
      m.hops = corner == 0 ? 0 : std::numeric_limits<uint32_t>::max();
      m.version = std::numeric_limits<uint64_t>::max();
      m.expiry = corner == 0 ? -1.5e300 : 4.9406564584124654e-324;  // denormal
      m.stale = corner == 1;
      m.free_ride = corner == 0;
      m.seq = corner == 0 ? 0 : std::numeric_limits<uint64_t>::max();
      m.subject = kInvalidNode;
      m.subject2 = corner == 0 ? 7 : kInvalidNode;
      for (uint32_t i = 0; i < 5u + 10u * static_cast<uint32_t>(corner); ++i) {
        m.route.push_back(i * 1000003u);
      }
      EXPECT_EQ(RoundTrip(m), m)
          << MessageTypeToString(type) << " corner " << corner;
    }
  }
}

TEST(WireRoundTrip, NegativeZeroExpiryPreservesBitPattern) {
  Message m;
  m.expiry = -0.0;
  const Message back = RoundTrip(m);
  EXPECT_TRUE(std::signbit(back.expiry));
}

TEST(WireRoundTrip, MaxRouteExactlyAtCap) {
  Message m;
  m.type = MessageType::kReply;
  m.origin = 0;
  for (size_t i = 0; i < wire::kMaxRouteEntries; ++i) {
    m.route.push_back(static_cast<NodeId>(i));
  }
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(wire::Serialize(m, &bytes).ok());
  EXPECT_EQ(bytes.size(), wire::kMaxFrameSize);
  Message out;
  ASSERT_TRUE(wire::Parse(bytes.data(), bytes.size(), &out).ok());
  EXPECT_EQ(out, m);
}

TEST(WireSerialize, RejectsOverCapRoute) {
  Message m;
  m.route.assign(wire::kMaxRouteEntries + 1, 3);
  std::vector<uint8_t> bytes{0xAB};  // Must be cleared on failure.
  EXPECT_TRUE(wire::Serialize(m, &bytes).IsInvalidArgument());
  EXPECT_TRUE(bytes.empty());
}

TEST(WireSerialize, RejectsNonFiniteExpiry) {
  std::vector<uint8_t> bytes;
  Message m;
  m.expiry = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(wire::Serialize(m, &bytes).IsInvalidArgument());
  m.expiry = std::numeric_limits<double>::infinity();
  EXPECT_TRUE(wire::Serialize(m, &bytes).IsInvalidArgument());
}

std::vector<uint8_t> GoldenFrame() {
  Message m;
  m.type = MessageType::kReply;
  m.from = 4;
  m.to = 9;
  m.origin = 17;
  m.hops = 3;
  m.version = 12;
  m.expiry = 60.25;
  m.stale = true;
  m.seq = 5;
  m.route = {17, 6, 2};
  std::vector<uint8_t> bytes;
  EXPECT_TRUE(wire::Serialize(m, &bytes).ok());
  return bytes;
}

TEST(WireParse, TruncationAtEveryByteOffsetIsACleanError) {
  const std::vector<uint8_t> frame = GoldenFrame();
  Message out;
  for (size_t cut = 0; cut < frame.size(); ++cut) {
    const util::Status parsed = wire::Parse(frame.data(), cut, &out);
    EXPECT_TRUE(parsed.IsInvalidArgument()) << "cut at " << cut;
  }
  EXPECT_TRUE(wire::Parse(frame.data(), frame.size(), &out).ok());
}

TEST(WireParse, RejectsTrailingBytes) {
  std::vector<uint8_t> frame = GoldenFrame();
  frame.push_back(0x00);
  Message out;
  EXPECT_TRUE(wire::Parse(frame.data(), frame.size(), &out)
                  .IsInvalidArgument());
}

TEST(WireParse, RejectsUnknownMsgCode) {
  std::vector<uint8_t> frame = GoldenFrame();
  Message out;
  for (int code : {0x00, 0x0A, 0x7F, 0xFF}) {
    frame[0] = static_cast<uint8_t>(code);
    EXPECT_TRUE(wire::Parse(frame.data(), frame.size(), &out)
                    .IsInvalidArgument())
        << "msgcode " << code;
  }
}

TEST(WireParse, RejectsWrongWireVersion) {
  std::vector<uint8_t> frame = GoldenFrame();
  Message out;
  frame[1] = wire::kWireVersion + 1;
  EXPECT_TRUE(wire::Parse(frame.data(), frame.size(), &out)
                  .IsInvalidArgument());
  frame[1] = 0;
  EXPECT_TRUE(wire::Parse(frame.data(), frame.size(), &out)
                  .IsInvalidArgument());
}

TEST(WireParse, RejectsUnknownFlagBits) {
  std::vector<uint8_t> frame = GoldenFrame();
  Message out;
  for (uint8_t bit = 0x04; bit != 0; bit <<= 1) {
    frame[2] = bit;
    EXPECT_TRUE(wire::Parse(frame.data(), frame.size(), &out)
                    .IsInvalidArgument())
        << "flag bit " << static_cast<int>(bit);
  }
}

TEST(WireParse, RejectsNonZeroReservedByte) {
  std::vector<uint8_t> frame = GoldenFrame();
  frame[3] = 0x01;
  Message out;
  EXPECT_TRUE(wire::Parse(frame.data(), frame.size(), &out)
                  .IsInvalidArgument());
}

TEST(WireParse, RejectsOverCapRouteLength) {
  std::vector<uint8_t> frame = GoldenFrame();
  // Claim a route longer than the cap; the buffer itself stays short, so
  // an implementation that trusted the length would read out of bounds.
  const uint16_t bogus = wire::kMaxRouteEntries + 1;
  frame[52] = static_cast<uint8_t>(bogus);
  frame[53] = static_cast<uint8_t>(bogus >> 8);
  Message out;
  EXPECT_TRUE(wire::Parse(frame.data(), frame.size(), &out)
                  .IsInvalidArgument());
}

TEST(WireParse, RejectsRouteLengthBeyondBuffer) {
  std::vector<uint8_t> frame = GoldenFrame();
  frame[52] = 200;  // In-cap claim, but the payload is 3 entries.
  frame[53] = 0;
  Message out;
  EXPECT_TRUE(wire::Parse(frame.data(), frame.size(), &out)
                  .IsInvalidArgument());
}

TEST(WireParse, RejectsNonFiniteExpiryPayload) {
  std::vector<uint8_t> frame = GoldenFrame();
  Message out;
  // Overwrite the expiry with the IEEE-754 bit patterns of +inf and NaN.
  const uint64_t patterns[] = {0x7FF0000000000000ull, 0x7FF8000000000001ull};
  for (const uint64_t bits : patterns) {
    for (int i = 0; i < 8; ++i) {
      frame[28 + i] = static_cast<uint8_t>(bits >> (8 * i));
    }
    EXPECT_TRUE(wire::Parse(frame.data(), frame.size(), &out)
                    .IsInvalidArgument());
  }
}

TEST(WireParse, ReusesRouteStorage) {
  Message out;
  out.route.assign(64, 9);  // Stale content must be fully replaced.
  const std::vector<uint8_t> frame = GoldenFrame();
  ASSERT_TRUE(wire::Parse(frame.data(), frame.size(), &out).ok());
  EXPECT_EQ(out.route, (std::vector<NodeId>{17, 6, 2}));
}

TEST(MessageEquality, DetectsEveryFieldDifference) {
  const auto base = [] {
    Message m;
    m.route = {1, 2};
    return m;
  };
  Message a = base();
  EXPECT_EQ(a, base());
  a.type = MessageType::kPush;
  EXPECT_NE(a, base());
  a = base();
  a.expiry = 1.0;
  EXPECT_NE(a, base());
  a = base();
  a.free_ride = true;
  EXPECT_NE(a, base());
  a = base();
  a.route.push_back(3);
  EXPECT_NE(a, base());
}

// --- Live socket pass ------------------------------------------------------

TEST(UdpTransportTest, LoopbackWireDeliversThroughRealSocket) {
  sim::Engine engine;
  util::Rng rng(7);
  metrics::Recorder recorder;
  OverlayNetwork network(&engine, &rng, &recorder, 0.1);
  std::vector<Message> delivered;
  network.set_handler([&](const Message& m) { delivered.push_back(m); });

  UdpTransport transport;
  UdpTransport::Options options;
  options.rank = 0;
  options.loopback_wire = true;
  // The test may share a host with parallel jobs; probe a few ports.
  util::Status opened = util::Status::Unavailable("no port tried");
  for (int attempt = 0; attempt < 16 && !opened.ok(); ++attempt) {
    options.peers = {util::StrFormat(
        "127.0.0.1:%d", 21000 + (::getpid() + attempt * 131) % 20000)};
    opened = transport.Open(options);
  }
  ASSERT_TRUE(opened.ok()) << opened.ToString();
  transport.set_network(&network);
  network.set_transport(&transport);

  Message m;
  m.type = MessageType::kPush;
  m.from = 1;
  m.to = 2;
  m.version = 42;
  m.expiry = 9.5;
  m.route = {1, 2, 3};
  network.Send(m);
  EXPECT_EQ(transport.frames_shipped(), 1u);
  EXPECT_TRUE(delivered.empty());  // On the wire, not in the engine.

  auto pumped = transport.Pump(/*timeout_ms=*/2000);
  ASSERT_TRUE(pumped.ok()) << pumped.status().ToString();
  EXPECT_EQ(*pumped, 1u);
  EXPECT_EQ(transport.frames_received(), 1u);
  EXPECT_EQ(transport.frames_rejected(), 0u);
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0], m);
}

TEST(UdpTransportTest, RejectsMalformedPeerEndpoints) {
  for (const char* bad : {"localhost", "127.0.0.1:", ":4000", "127.0.0.1:0",
                          "127.0.0.1:70000", "127.0.0.1:4x0", "nothost:80"}) {
    UdpTransport transport;
    UdpTransport::Options options;
    options.peers = {bad};
    EXPECT_TRUE(transport.Open(options).IsInvalidArgument()) << bad;
  }
}

}  // namespace
}  // namespace dupnet::net
