#ifndef DUP_TESTS_TEST_UTIL_H_
#define DUP_TESTS_TEST_UTIL_H_

#include <memory>

#include "audit/invariant_checker.h"
#include "metrics/recorder.h"
#include "net/overlay_network.h"
#include "proto/tree_protocol_base.h"
#include "sim/engine.h"
#include "topo/tree.h"
#include "util/check.h"
#include "util/rng.h"

namespace dupnet::testing {

/// Builds the index search tree of the paper's Figures 1 and 2:
///
///   N1 - N2 - N3 - N4
///               \- N5 - N6 - N7
///                          \- N8
///
/// N1 (id 1) is the authority. Node ids equal the paper's subscripts.
inline topo::IndexSearchTree MakePaperTree() {
  topo::IndexSearchTree tree(/*root=*/1);
  DUP_CHECK_OK(tree.AttachLeaf(1, 2));
  DUP_CHECK_OK(tree.AttachLeaf(2, 3));
  DUP_CHECK_OK(tree.AttachLeaf(3, 4));
  DUP_CHECK_OK(tree.AttachLeaf(3, 5));
  DUP_CHECK_OK(tree.AttachLeaf(5, 6));
  DUP_CHECK_OK(tree.AttachLeaf(6, 7));
  DUP_CHECK_OK(tree.AttachLeaf(6, 8));
  return tree;
}

/// Owns the simulation plumbing a protocol under test needs. The protocol
/// is created by the test (PCX/CUP/DUP) against `tree` and `network` and
/// registered with `Attach`.
class ProtocolHarness {
 public:
  explicit ProtocolHarness(topo::IndexSearchTree tree, uint64_t seed = 7)
      : tree_(std::move(tree)),
        rng_(seed),
        network_(&engine_, &rng_, &recorder_, /*mean_hop_latency=*/0.1) {}

  /// Routes delivered messages into `protocol`.
  void Attach(proto::TreeProtocolBase* protocol) {
    protocol_ = protocol;
    network_.set_handler(
        [protocol](const net::Message& msg) { protocol->OnMessage(msg); });
  }

  /// Runs the event loop dry (the network becomes quiescent).
  void Drain() { engine_.Run(); }

  /// Runs the full invariant audit at quiescence (docs/invariants.md):
  /// stable plus global checks for the attached protocol. Requires a prior
  /// Drain(); returns FailedPrecondition while traffic is still in flight.
  util::Status Audit() const {
    return audit::AuditQuiescent(tree_, network_, *protocol_);
  }

  /// Issues `count` queries at `node`, draining after each.
  void QueryAt(NodeId node, int count = 1) {
    for (int i = 0; i < count; ++i) {
      protocol_->OnLocalQuery(node);
      Drain();
    }
  }

  /// Publishes a version at the authority with a full TTL and drains.
  void Publish(IndexVersion version, sim::SimTime ttl = 3600.0) {
    protocol_->OnRootPublish(version, engine_.Now() + ttl);
    Drain();
  }

  /// Advances simulated time without running protocol activity.
  void AdvanceTime(sim::SimTime delta) {
    engine_.ScheduleAfter(delta, [] {});
    engine_.RunUntil(engine_.Now() + delta);
  }

  sim::Engine& engine() { return engine_; }
  topo::IndexSearchTree& tree() { return tree_; }
  net::OverlayNetwork& network() { return network_; }
  metrics::Recorder& recorder() { return recorder_; }
  util::Rng& rng() { return rng_; }

 private:
  topo::IndexSearchTree tree_;
  util::Rng rng_;
  sim::Engine engine_;
  metrics::Recorder recorder_;
  net::OverlayNetwork network_;
  proto::TreeProtocolBase* protocol_ = nullptr;
};

}  // namespace dupnet::testing

#endif  // DUP_TESTS_TEST_UTIL_H_
