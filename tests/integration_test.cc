// Cross-module integration tests: the paper's worked examples end-to-end
// and the qualitative relationships its evaluation section reports.

#include <gtest/gtest.h>

#include "core/dup_protocol.h"
#include "experiment/config.h"
#include "experiment/replicator.h"
#include "proto/cup.h"
#include "proto/pcx.h"
#include "test_util.h"

namespace dupnet {
namespace {

using ::dupnet::testing::MakePaperTree;
using ::dupnet::testing::ProtocolHarness;

// ---------------------------------------------------------------------------
// The paper's Figure 2 arithmetic: "this scheme only costs three hops while
// PCX costs ten hops and CUP costs five hops to serve N4's and N6's
// queries." The PCX number assumes passing replies are cached (N6's query
// stops at N3, warmed by N4's reply two hops up).
// ---------------------------------------------------------------------------

TEST(PaperFigure2, PcxCostsTenHops) {
  ProtocolHarness harness(MakePaperTree());
  proto::ProtocolOptions options;
  options.cache_passing_replies = true;
  proto::PcxProtocol protocol(&harness.network(), &harness.tree(), options);
  harness.Attach(&protocol);
  harness.Publish(1);

  harness.QueryAt(4);  // 3 up to N1, 3 back: 6 hops.
  harness.QueryAt(6);  // 2 up to N3 (warm via pass-through), 2 back: 4 hops.
  EXPECT_EQ(harness.recorder().hops().request() +
                harness.recorder().hops().reply(),
            10u);
}

TEST(PaperFigure2, CupCostsFiveHops) {
  ProtocolHarness harness(MakePaperTree());
  proto::CupProtocol protocol(&harness.network(), &harness.tree(),
                              proto::ProtocolOptions());
  harness.Attach(&protocol);
  harness.Publish(1);
  harness.QueryAt(4);
  harness.QueryAt(6);  // Demand along both paths.
  const uint64_t before = harness.recorder().hops().push();
  harness.Publish(2);
  EXPECT_EQ(harness.recorder().hops().push() - before, 5u);
}

TEST(PaperFigure2, DupCostsThreeHops) {
  ProtocolHarness harness(MakePaperTree());
  core::DupProtocol protocol(&harness.network(), &harness.tree(),
                             proto::ProtocolOptions());
  harness.Attach(&protocol);
  harness.Publish(1);
  protocol.ForceSubscribe(4);
  protocol.ForceSubscribe(6);
  harness.Drain();
  const uint64_t before = harness.recorder().hops().push();
  harness.Publish(2);
  EXPECT_EQ(harness.recorder().hops().push() - before, 3u);
}

TEST(PaperSection3A, DirectPushSavesSevenEighths) {
  // "It only costs one hop to push the update. If the update is not pushed
  // to N6, it costs eight hops for N6 to send the request and get the index
  // from N1 in PCX. Therefore, the cost is reduced by 87.5%."
  ProtocolHarness pcx_harness(MakePaperTree());
  proto::PcxProtocol pcx(&pcx_harness.network(), &pcx_harness.tree(),
                         proto::ProtocolOptions());
  pcx_harness.Attach(&pcx);
  pcx_harness.Publish(1);
  pcx_harness.QueryAt(6);
  const uint64_t pcx_cost = pcx_harness.recorder().hops().total();
  EXPECT_EQ(pcx_cost, 8u);

  ProtocolHarness dup_harness(MakePaperTree());
  core::DupProtocol dup(&dup_harness.network(), &dup_harness.tree(),
                        proto::ProtocolOptions());
  dup_harness.Attach(&dup);
  dup_harness.Publish(1);
  dup.ForceSubscribe(6);
  dup_harness.Drain();
  const uint64_t before = dup_harness.recorder().hops().push();
  dup_harness.Publish(2);
  const uint64_t dup_cost = dup_harness.recorder().hops().push() - before;
  EXPECT_EQ(dup_cost, 1u);
  EXPECT_DOUBLE_EQ(1.0 - static_cast<double>(dup_cost) /
                             static_cast<double>(pcx_cost),
                   0.875);
}

// ---------------------------------------------------------------------------
// Qualitative relationships from the evaluation section, on small but
// realistic simulations.
// ---------------------------------------------------------------------------

experiment::ExperimentConfig EvalConfig(double lambda) {
  experiment::ExperimentConfig config;
  config.num_nodes = 512;
  config.lambda = lambda;
  config.warmup_time = 3600.0;
  config.measure_time = 4 * 3540.0;
  config.seed = 5;
  return config;
}

TEST(EvaluationShape, DupBeatsPcxInLatencyAndCost) {
  auto comparison = experiment::CompareSchemes(EvalConfig(5.0), 2);
  ASSERT_TRUE(comparison.ok());
  EXPECT_LT(comparison->dup.latency.mean, comparison->pcx.latency.mean);
  EXPECT_LT(comparison->dup.cost.mean, comparison->pcx.cost.mean);
}

TEST(EvaluationShape, DupBeatsCupAtHighRate) {
  auto comparison = experiment::CompareSchemes(EvalConfig(20.0), 2);
  ASSERT_TRUE(comparison.ok());
  EXPECT_LT(comparison->dup.latency.mean, comparison->cup.latency.mean);
  EXPECT_LE(comparison->dup.cost.mean, comparison->cup.cost.mean * 1.05);
}

TEST(EvaluationShape, RelativeCostImprovesWithRate) {
  auto slow = experiment::CompareSchemes(EvalConfig(1.0), 2);
  auto fast = experiment::CompareSchemes(EvalConfig(20.0), 2);
  ASSERT_TRUE(slow.ok());
  ASSERT_TRUE(fast.ok());
  EXPECT_LT(fast->dup_cost_relative_to_pcx(),
            slow->dup_cost_relative_to_pcx());
}

TEST(EvaluationShape, LatencyFallsAsRateGrows) {
  // Paper Fig. 4 (a): more queries -> warmer caches -> lower latency.
  auto slow = experiment::Replicator::Run(EvalConfig(0.5), 2);
  auto fast = experiment::Replicator::Run(EvalConfig(10.0), 2);
  ASSERT_TRUE(slow.ok());
  ASSERT_TRUE(fast.ok());
  EXPECT_LT(fast->latency.mean, slow->latency.mean);
}

TEST(EvaluationShape, PcxServesStaleCopiesDupMuchLess) {
  // PCX drawback 2: stale copies served until the timer runs out; pushes
  // keep DUP's interested nodes fresh.
  experiment::ExperimentConfig config = EvalConfig(10.0);
  config.scheme = experiment::Scheme::kPcx;
  auto pcx = experiment::SimulationDriver::Run(config);
  config.scheme = experiment::Scheme::kDup;
  auto dup = experiment::SimulationDriver::Run(config);
  ASSERT_TRUE(pcx.ok());
  ASSERT_TRUE(dup.ok());
  EXPECT_GT(pcx->stale_rate, dup->stale_rate);
}

TEST(EvaluationShape, ShortcutAblationShowsWhereTheWinComesFrom) {
  experiment::ExperimentConfig config = EvalConfig(10.0);
  config.scheme = experiment::Scheme::kDup;
  // Keep the subscriber set sparse: with everyone subscribed the DUP tree
  // degenerates to the index search tree and every "shortcut" is already a
  // tree edge, making the ablation a no-op.
  config.threshold_c = 200;
  auto with_shortcut = experiment::SimulationDriver::Run(config);
  config.dup.shortcut_push = false;
  auto without_shortcut = experiment::SimulationDriver::Run(config);
  ASSERT_TRUE(with_shortcut.ok());
  ASSERT_TRUE(without_shortcut.ok());
  EXPECT_LT(with_shortcut->hops.push(), without_shortcut->hops.push());
}

TEST(EvaluationShape, ParetoArrivalsRun) {
  experiment::ExperimentConfig config = EvalConfig(5.0);
  config.arrival = experiment::ArrivalKind::kPareto;
  config.pareto_alpha = 1.05;
  config.scheme = experiment::Scheme::kDup;
  auto metrics = experiment::SimulationDriver::Run(config);
  ASSERT_TRUE(metrics.ok());
  EXPECT_GT(metrics->queries, 0u);
}

TEST(EvaluationShape, SmallerDegreeMeansDeeperTreeAndHigherLatency) {
  // Paper Fig. 6: latency falls as the maximum node degree D grows.
  experiment::ExperimentConfig narrow = EvalConfig(1.0);
  narrow.scheme = experiment::Scheme::kPcx;
  narrow.max_degree = 2;
  experiment::ExperimentConfig wide = narrow;
  wide.max_degree = 10;
  auto narrow_result = experiment::Replicator::Run(narrow, 2);
  auto wide_result = experiment::Replicator::Run(wide, 2);
  ASSERT_TRUE(narrow_result.ok());
  ASSERT_TRUE(wide_result.ok());
  EXPECT_GT(narrow_result->latency.mean, wide_result->latency.mean);
}

}  // namespace
}  // namespace dupnet
